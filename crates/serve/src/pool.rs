//! The worker pool: `std::thread` workers pulling jobs from a bounded
//! MPMC queue.
//!
//! Each worker owns its execution state outright — one instance of every
//! [`BackendKind`] and one [`Kem`] per parameter set (building a `Kem`
//! derives the BCH generator polynomial, so it is cached, not rebuilt per
//! job) — which keeps the hot path lock-free apart from the queue itself.
//!
//! **Determinism.** A job's randomness is `root.fork(job.seq)` (see
//! [`Sha256CtrRng::fork`]): it depends only on the pool's root seed and
//! the job's sequence number, never on which worker runs it or in what
//! order. A fixed seed therefore yields byte-identical results for 1 or
//! 64 workers — the property the acceptance benchmark checks.
//!
//! **Cycle accounting.** Every job runs under a [`CycleLedger`]; the total
//! is added to the executing worker's counter. The pool models a
//! multi-core RISCY machine (one core per worker), so the batch makespan
//! in modelled time is the busiest worker's total — this is how the
//! repo's wall-clock-free environment still measures worker scaling.
//!
//! **Warm start.** With [`ServeConfig::warm_iss`] on (the default), the
//! pool builds one pristine [`WarmImage`] of a small `pq.modq` probe
//! program, primes a process-wide [`SharedTraceCache`] with a single run
//! on the pool thread, and every worker executes the probe from the image
//! with the shared cache attached before entering its job loop. The first
//! thread to compile a hot superblock pays for it once; siblings adopt it
//! from the cache instead of re-compiling. The probe runs on
//! [`lac_rv32::Engine::Jit`] — the fastest tier, degrading silently to
//! the superblock interpreter on hosts without a JIT backend — so the
//! priming run also publishes its emitted host code through the shared
//! cache and warm workers start with zero local JIT compiles.
//! [`ServePool::new`] returns only after every worker has reported its
//! probe — all digests must equal the pool thread's reference (see
//! [`WarmReport`]), which is how the cross-worker sharing path stays
//! differentially checked at every pool startup.

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::BoundedQueue;
use crate::{BackendKind, Op};
use lac::{Backend, Ciphertext, Kem, KemPublicKey, KemSecretKey, Params};
use lac_meter::CycleLedger;
use lac_rand::Sha256CtrRng;
use lac_rv32::{Cpu, Engine, Machine, SharedTraceCache, SharedTraceStats, WarmImage};
use lac_sha256::Sha256;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// What a job does (the payloads are wire bytes, parsed by the worker so
/// malformed input is an error *reply*, not a server fault).
#[derive(Debug, Clone)]
pub enum JobKind {
    /// Generate a key pair.
    Keygen,
    /// Encapsulate against a serialized public key.
    Encaps {
        /// Serialized [`KemPublicKey`].
        pk: Vec<u8>,
    },
    /// Decapsulate a serialized ciphertext with a serialized secret key.
    Decaps {
        /// Serialized [`KemSecretKey`].
        sk: Vec<u8>,
        /// Serialized [`Ciphertext`].
        ct: Vec<u8>,
    },
}

impl JobKind {
    /// The metrics axis this job belongs to.
    pub fn op(&self) -> Op {
        match self {
            JobKind::Keygen => Op::Keygen,
            JobKind::Encaps { .. } => Op::Encaps,
            JobKind::Decaps { .. } => Op::Decaps,
        }
    }
}

/// One unit of work for the pool.
#[derive(Debug, Clone)]
pub struct Job {
    /// DRBG lane: the job's randomness is `root.fork(seq)`. Callers that
    /// need fresh randomness per request must use distinct values (the
    /// wire client and the load generator both do).
    pub seq: u64,
    /// Parameter set the job runs under.
    pub params: Params,
    /// Execution backend.
    pub backend: BackendKind,
    /// The operation and its payload.
    pub kind: JobKind,
}

impl Job {
    /// Convenience constructor.
    pub fn new(seq: u64, params: Params, backend: BackendKind, kind: JobKind) -> Self {
        Self {
            seq,
            params,
            backend,
            kind,
        }
    }
}

/// A finished job's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Fresh key pair (serialized).
    Keygen {
        /// Serialized public key.
        pk: Vec<u8>,
        /// Serialized KEM secret key.
        sk: Vec<u8>,
    },
    /// Ciphertext and the shared secret it transports.
    Encaps {
        /// Serialized ciphertext.
        ct: Vec<u8>,
        /// The 32-byte shared secret.
        shared: [u8; 32],
    },
    /// The decapsulated shared secret.
    Decaps {
        /// The 32-byte shared secret.
        shared: [u8; 32],
    },
    /// The job could not be executed (malformed payload, closed pool, …).
    Error(String),
}

impl Reply {
    /// Whether this reply is an error.
    pub fn is_error(&self) -> bool {
        matches!(self, Reply::Error(_))
    }
}

/// Pool sizing and seeding, plus the event-driven front-end's operational
/// envelope (connection caps, timeouts, backpressure bounds). Every limit
/// here is also a CLI flag on `lac-suite serve` and a counter/gauge in the
/// `STATS` reply.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker-thread count (≥ 1).
    pub workers: usize,
    /// Reactor-shard count for the front-end (≥ 1): each shard is its own
    /// event-loop thread owning a disjoint set of connections, its own
    /// parker/waker, its own completion channel and its own slice of the
    /// session table. Connections are dealt round-robin at accept time
    /// and never migrate.
    pub reactors: usize,
    /// Bounded-queue capacity: producers block once this many jobs wait.
    /// The event-driven server never blocks — it sheds with `BUSY` instead.
    pub queue_capacity: usize,
    /// Root seed all per-job DRBG lanes fork from.
    pub seed: [u8; 32],
    /// Warm-start the workers' ISS state: prime a shared trace cache with
    /// one probe run and have every worker start from a [`WarmImage`]
    /// (see the module docs). Purely a startup optimisation — job results
    /// are identical either way.
    pub warm_iss: bool,
    /// Maximum simultaneously open connections; excess accepts are closed
    /// immediately and counted (`conns_rejected`).
    pub max_conns: usize,
    /// Accept-rate limit in connections/second (token bucket); 0 disables.
    pub accept_rps: u64,
    /// Close a connection with no traffic, no in-flight jobs and nothing
    /// buffered after this many milliseconds; 0 disables.
    pub idle_timeout_ms: u64,
    /// Close a connection that leaves a request frame half-sent for this
    /// many milliseconds (slow-loris guard); 0 disables.
    pub read_timeout_ms: u64,
    /// Close a connection whose write buffer makes no progress for this
    /// many milliseconds (dead-peer guard); 0 disables.
    pub write_timeout_ms: u64,
    /// Per-connection write-buffer bound in bytes: above it the server
    /// stops reading that connection until the peer drains (backpressure).
    pub max_write_buffer: usize,
    /// Graceful-drain deadline after `SHUTDOWN`, in milliseconds: in-flight
    /// jobs get this long to complete and flush before the server exits.
    pub drain_ms: u64,
    /// Bound on the session table (see `crate::session::SessionTable`):
    /// opening a session beyond it evicts the least-recently-used one.
    pub session_capacity: usize,
    /// Force a session rekey after this many accepted messages in an
    /// epoch (the server rejects further traffic until the client
    /// rekeys); 0 disables the policy.
    pub session_rekey_after: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            reactors: 1,
            queue_capacity: 64,
            seed: [0u8; 32],
            warm_iss: true,
            max_conns: 1024,
            accept_rps: 0,
            idle_timeout_ms: 60_000,
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            max_write_buffer: 1 << 20,
            drain_ms: 5_000,
            session_capacity: 1 << 17,
            session_rekey_after: 1 << 16,
        }
    }
}

/// Iterations of the warm-start probe's outer loop.
const PROBE_ITERS: u32 = 8;
/// Coefficients per probe recover pass.
const PROBE_COEFFS: u32 = 64;
/// Base address of the probe's input bytes.
const PROBE_IN: u32 = 0x8000;
/// Base address of the probe's output buffer.
const PROBE_OUT: u32 = 0x9000;

/// Assemble the warm-start probe: a miniature LAC recover loop (`pq.modq`,
/// byte loads/stores, a backward branch) hot enough for the superblock
/// engine to compile and publish its traces.
///
/// # Panics
///
/// Panics if the embedded program fails to assemble (a build-time bug).
fn probe_machine() -> Machine {
    let src = format!(
        r#"
            li   s0, 0
            li   s1, {PROBE_ITERS}
        outer:
            li   t2, {PROBE_IN}
            li   t5, {PROBE_OUT}
            li   t3, {PROBE_COEFFS}
            li   s2, 251
        recover:
            lbu  t0, 0(t2)
            add  t0, t0, s2
            pq.modq t0, t0, zero
            addi t0, t0, -63
            sltiu t0, t0, 126
            sb   t0, 0(t5)
            addi t2, t2, 1
            addi t5, t5, 1
            addi t3, t3, -1
            bnez t3, recover
            addi s0, s0, 1
            bne  s0, s1, outer
            ecall
        "#
    );
    let mut machine = Machine::assemble(&src).expect("warm probe assembles");
    let input: Vec<u8> = (0..PROBE_COEFFS)
        .map(|i| ((i * 11 + 5) % 251) as u8)
        .collect();
    machine.cpu_mut().write_bytes(PROBE_IN, &input);
    machine
}

/// Run the probe to `ecall` and hash the architectural exit state plus the
/// output buffer. Every warm worker must produce the pool thread's digest.
///
/// # Panics
///
/// Panics if the probe traps (a build-time bug).
fn run_probe(cpu: &mut Cpu) -> String {
    let exit = cpu.run(1_000_000).expect("warm probe runs to ecall");
    let mut hash = Sha256::new();
    hash.update(b"lac-serve:warm-probe:v1");
    for reg in exit.regs {
        hash.update(&reg.to_le_bytes());
    }
    hash.update(&exit.pc.to_le_bytes());
    hash.update(&exit.cycles.to_le_bytes());
    hash.update(&exit.instructions.to_le_bytes());
    hash.update(cpu.read_bytes(PROBE_OUT, PROBE_COEFFS as usize));
    hash.finalize().iter().map(|b| format!("{b:02x}")).collect()
}

/// The warm-start state every worker shares: one pristine probe image plus
/// the process-wide trace cache, primed by a single pool-thread run.
struct WarmStart {
    image: WarmImage,
    shared: Arc<SharedTraceCache>,
    reference_digest: String,
}

impl WarmStart {
    fn prime() -> Self {
        let machine = probe_machine();
        let image = machine.snapshot();
        let shared = Arc::new(SharedTraceCache::new());
        let mut primer = Cpu::from_image(&image);
        primer.set_engine(Engine::Jit);
        primer.attach_shared_cache(Arc::clone(&shared));
        let reference_digest = run_probe(&mut primer);
        Self {
            image,
            shared,
            reference_digest,
        }
    }
}

/// One worker's startup warm-probe result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmProbe {
    /// Worker index.
    pub worker: usize,
    /// Architectural digest of the worker's probe run.
    pub digest: String,
    /// Superblocks the worker adopted from the shared trace cache.
    pub shared_installs: u64,
    /// Superblocks the worker compiled locally (zero when the priming run
    /// already published every hot block).
    pub compiles: u64,
    /// JIT translations the worker adopted from the shared trace cache.
    pub jit_shared_installs: u64,
    /// JIT translations the worker compiled locally (zero when the
    /// priming run already published host code for every hot block; also
    /// zero on hosts without a JIT backend).
    pub jit_compiles: u64,
    /// Chain links the worker's probe installed between translated
    /// blocks (links are process-local per CPU, never shared).
    pub jit_links_installed: u64,
    /// Probe block entries taken through a chain link without returning
    /// to the dispatch loop — the fleet-wide link-adoption signal.
    pub jit_chained_dispatches: u64,
    /// Probe chain links severed by invalidation, eviction or restore.
    pub jit_unlinks: u64,
}

/// Pool-wide warm-start report: the priming run's reference digest, every
/// worker's probe, and the shared trace-cache counters once all workers
/// finished. Available from [`ServePool::warm_report`] when
/// [`ServeConfig::warm_iss`] is on.
#[derive(Debug, Clone)]
pub struct WarmReport {
    /// Digest of the pool-thread priming run.
    pub reference_digest: String,
    /// Per-worker probe results, in worker-index order.
    pub probes: Vec<WarmProbe>,
    /// Shared trace-cache counters after every probe completed.
    pub shared: SharedTraceStats,
}

impl WarmReport {
    /// Whether every worker's probe digest equals the reference — the
    /// cross-worker exactness check.
    pub fn digests_agree(&self) -> bool {
        self.probes
            .iter()
            .all(|p| p.digest == self.reference_digest)
    }

    /// Fleet-wide chain-link adoption summed across every worker probe:
    /// `(links_installed, chained_dispatches, unlinks)`. Links are
    /// process-local per CPU, so the sum is the honest fleet total — no
    /// double counting through the shared trace cache.
    pub fn chain_totals(&self) -> (u64, u64, u64) {
        self.probes.iter().fold((0, 0, 0), |(l, c, u), p| {
            (
                l + p.jit_links_installed,
                c + p.jit_chained_dispatches,
                u + p.jit_unlinks,
            )
        })
    }
}

/// A worker-completed job routed back to the event loop: which
/// connection, which reply slot on it, and the result.
#[derive(Debug)]
pub struct Completion {
    /// Reactor-assigned connection id.
    pub conn: u64,
    /// Absolute reply-slot sequence on that connection (responses must go
    /// out in request order; the slot pins this reply's position).
    pub slot: u64,
    /// The job's result.
    pub reply: Reply,
}

/// Where a finished job's reply goes.
pub enum ReplySink {
    /// A plain channel — the blocking [`Ticket`] path.
    Channel(mpsc::Sender<Reply>),
    /// Event-loop routing: a [`Completion`] record plus an unpark of the
    /// reactor thread, which is parked between readiness passes (the
    /// fiber-parking idiom — `unpark` on a running thread just makes its
    /// next park return immediately, so the wakeup can never be lost).
    Routed {
        /// Reactor-assigned connection id.
        conn: u64,
        /// Reply-slot sequence on that connection.
        slot: u64,
        /// The reactor's completion channel.
        tx: mpsc::Sender<Completion>,
        /// Waker for the reactor thread, rung after sending.
        wake: crate::reactor::Waker,
    },
}

impl ReplySink {
    fn deliver(self, reply: Reply) {
        match self {
            // A dropped receiver (caller gave up) is fine — ignore errors.
            ReplySink::Channel(tx) => {
                let _ = tx.send(reply);
            }
            ReplySink::Routed {
                conn,
                slot,
                tx,
                wake,
            } => {
                let _ = tx.send(Completion { conn, slot, reply });
                wake.wake();
            }
        }
    }
}

/// Why [`ServePool::try_submit`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — shed the request (`BUSY`).
    Full,
    /// The pool is shutting down — answer with a terminal error.
    Closed,
}

/// A queued job plus its reply sink and enqueue timestamp.
struct Task {
    job: Job,
    enqueued: Instant,
    reply_to: ReplySink,
}

/// A ticket for a submitted job; redeem with [`Ticket::wait`].
pub struct Ticket {
    rx: mpsc::Receiver<Reply>,
}

impl Ticket {
    /// Block until the job's reply arrives. If the worker executing the
    /// job died (a panic in scheme code), this surfaces as an error reply
    /// rather than a hang: the channel disconnects.
    pub fn wait(self) -> Reply {
        self.rx
            .recv()
            .unwrap_or_else(|_| Reply::Error("worker disconnected before replying".into()))
    }
}

/// The worker pool (see module docs).
pub struct ServePool {
    queue: Arc<BoundedQueue<Task>>,
    metrics: Arc<Metrics>,
    worker_cycles: Arc<Vec<AtomicU64>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    config: ServeConfig,
    warm: Option<WarmReport>,
}

impl ServePool {
    /// Spawn `config.workers` workers. With [`ServeConfig::warm_iss`] on,
    /// this primes the shared trace cache and blocks until every worker
    /// has run its warm-start probe (see the module docs), so the pool is
    /// fully warmed when `new` returns.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero (a pool that can never make progress).
    pub fn new(config: ServeConfig) -> Self {
        assert!(config.workers > 0, "pool needs at least one worker");
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let metrics = Arc::new(Metrics::with_reactors(config.reactors.max(1)));
        let worker_cycles: Arc<Vec<AtomicU64>> =
            Arc::new((0..config.workers).map(|_| AtomicU64::new(0)).collect());
        let root = Sha256CtrRng::from_seed(config.seed);
        let warm_start = config.warm_iss.then(WarmStart::prime);
        let (probe_tx, probe_rx) = mpsc::channel();
        let handles = (0..config.workers)
            .map(|index| {
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(&metrics);
                let cycles = Arc::clone(&worker_cycles);
                let root = root.clone();
                let warm = warm_start
                    .as_ref()
                    .map(|w| (w.image.clone(), Arc::clone(&w.shared), probe_tx.clone()));
                std::thread::Builder::new()
                    .name(format!("lac-serve-worker-{index}"))
                    .spawn(move || worker_main(index, &queue, &metrics, &cycles, &root, warm))
                    .expect("spawning worker thread")
            })
            .collect();
        drop(probe_tx);
        let warm = warm_start.map(|w| {
            let mut probes: Vec<WarmProbe> = (0..config.workers)
                .map(|_| {
                    probe_rx
                        .recv()
                        .expect("every worker reports its warm probe")
                })
                .collect();
            probes.sort_by_key(|p| p.worker);
            WarmReport {
                reference_digest: w.reference_digest,
                probes,
                shared: w.shared.stats(),
            }
        });
        Self {
            queue,
            metrics,
            worker_cycles,
            handles: Mutex::new(handles),
            config,
            warm,
        }
    }

    /// Enqueue one job (blocking while the queue is full) and return a
    /// ticket for its reply.
    pub fn submit(&self, job: Job) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let task = Task {
            job,
            enqueued: Instant::now(),
            reply_to: ReplySink::Channel(tx),
        };
        if let Err(task) = self.queue.push(task) {
            // Pool already shut down: reply inline so the ticket resolves.
            task.reply_to
                .deliver(Reply::Error("pool is shut down".into()));
        }
        Ticket { rx }
    }

    /// Enqueue one job without blocking, delivering its reply through
    /// `sink` when a worker finishes it. This is the event loop's
    /// submission path: a full queue is an immediate [`SubmitError::Full`]
    /// (the caller sheds with `BUSY`) instead of a stalled reactor.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the queue is at capacity,
    /// [`SubmitError::Closed`] when the pool is shutting down. The job and
    /// sink are dropped — the caller answers the peer itself.
    pub fn try_submit(&self, job: Job, sink: ReplySink) -> Result<(), SubmitError> {
        let task = Task {
            job,
            enqueued: Instant::now(),
            reply_to: sink,
        };
        self.queue.try_push(task).map_err(|e| match e {
            crate::queue::TryPushError::Full(_) => SubmitError::Full,
            crate::queue::TryPushError::Closed(_) => SubmitError::Closed,
        })
    }

    /// Enqueue a whole batch and return one [`Ticket`] per job, in
    /// submission order. Tickets buffer replies in their channels, so
    /// pushing everything before waiting is safe (workers never block
    /// sending a reply) and keeps all workers fed — callers can then
    /// redeem tickets in order and stream results as they resolve.
    /// Backpressure applies: once the queue is full, submission proceeds
    /// at the pool's drain rate.
    pub fn submit_batch_tickets(&self, jobs: Vec<Job>) -> Vec<Ticket> {
        jobs.into_iter().map(|job| self.submit(job)).collect()
    }

    /// Dispatch a whole batch across the workers and return the replies
    /// **in submission order**.
    pub fn submit_batch(&self, jobs: Vec<Job>) -> Vec<Reply> {
        self.submit_batch_tickets(jobs)
            .into_iter()
            .map(Ticket::wait)
            .collect()
    }

    /// The live metrics handle.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The pool's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The warm-start report, when [`ServeConfig::warm_iss`] was on.
    pub fn warm_report(&self) -> Option<&WarmReport> {
        self.warm.as_ref()
    }

    /// Modelled cycles executed so far by each worker.
    pub fn worker_cycle_totals(&self) -> Vec<u64> {
        self.worker_cycles
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Point-in-time snapshot of counters, histogram, queue state and
    /// per-worker cycle totals.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            workers: self.config.workers,
            reactors: self.config.reactors.max(1),
            queue_capacity: self.queue.capacity(),
            queue_high_water: self.queue.high_water_mark(),
            requests: [
                self.metrics.requests(Op::Keygen),
                self.metrics.requests(Op::Encaps),
                self.metrics.requests(Op::Decaps),
            ],
            errors: self.metrics.errors(),
            latency: self.metrics.latency_snapshot(),
            worker_cycles: self.worker_cycle_totals(),
            frontend: self.metrics.frontend().snapshot(),
            sessions: self.metrics.sessions().snapshot(),
            shards: self.metrics.shard_snapshots(),
        }
    }

    /// Graceful shutdown: stop accepting jobs, let queued jobs drain, join
    /// every worker. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.queue.close();
        let mut handles = self.handles.lock().expect("pool handle lock poisoned");
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-worker execution state: every backend kind plus a cached `Kem` per
/// parameter set (constructing one derives the BCH generator polynomial).
struct WorkerState {
    backends: Vec<(BackendKind, Box<dyn Backend>)>,
    kems: Vec<(&'static str, Kem)>,
}

impl WorkerState {
    fn new() -> Self {
        Self {
            backends: BackendKind::ALL
                .iter()
                .map(|&kind| (kind, kind.build()))
                .collect(),
            kems: Params::ALL
                .iter()
                .map(|&params| (params.name(), Kem::new(params)))
                .collect(),
        }
    }

    /// Split borrow: the cached `Kem` (shared) and the backend (mutable)
    /// for a job, without cloning either.
    fn for_job(&mut self, job: &Job) -> (&Kem, &mut dyn Backend) {
        let kem = self
            .kems
            .iter()
            .find(|(name, _)| *name == job.params.name())
            .map(|(_, kem)| kem)
            .expect("every parameter set is prebuilt");
        let backend = self
            .backends
            .iter_mut()
            .find(|(k, _)| *k == job.backend)
            .map(|(_, b)| b.as_mut())
            .expect("every BackendKind is prebuilt");
        (kem, backend)
    }
}

fn worker_main(
    index: usize,
    queue: &BoundedQueue<Task>,
    metrics: &Metrics,
    cycles: &[AtomicU64],
    root: &Sha256CtrRng,
    warm: Option<(WarmImage, Arc<SharedTraceCache>, mpsc::Sender<WarmProbe>)>,
) {
    if let Some((image, shared, report)) = warm {
        // Warm-start probe: run the shared workload from the pristine
        // image with the process-wide trace cache attached, adopting the
        // priming run's compiled superblocks instead of re-compiling.
        let mut cpu = Cpu::from_image(&image);
        cpu.set_engine(Engine::Jit);
        cpu.attach_shared_cache(shared);
        let digest = run_probe(&mut cpu);
        let stats = cpu.superblock_stats();
        let jit = cpu.jit_stats();
        // The pool constructor waits for this; a dropped receiver only
        // happens if `new` panicked, in which case the send result is moot.
        let _ = report.send(WarmProbe {
            worker: index,
            digest,
            shared_installs: stats.shared_installs,
            compiles: stats.compiles,
            jit_shared_installs: jit.shared_installs,
            jit_compiles: jit.compiles,
            jit_links_installed: jit.links_installed,
            jit_chained_dispatches: jit.chained_dispatches,
            jit_unlinks: jit.unlinks,
        });
    }
    let mut state = WorkerState::new();
    while let Some(task) = queue.pop() {
        let op = task.job.kind.op();
        let mut ledger = CycleLedger::new();
        let reply = execute(&mut state, root, &task.job, &mut ledger);
        cycles[index].fetch_add(ledger.total(), Ordering::Relaxed);
        metrics.record(op, task.enqueued.elapsed(), reply.is_error());
        task.reply_to.deliver(reply);
    }
}

/// Run one job on this worker's state. Malformed payloads become
/// [`Reply::Error`]; nothing here panics on bad input.
fn execute(
    state: &mut WorkerState,
    root: &Sha256CtrRng,
    job: &Job,
    ledger: &mut CycleLedger,
) -> Reply {
    let (kem, backend) = state.for_job(job);
    match &job.kind {
        JobKind::Keygen => {
            let mut rng = root.fork(job.seq);
            let (pk, sk) = kem.keygen(&mut rng, backend, ledger);
            Reply::Keygen {
                pk: pk.to_bytes(),
                sk: sk.to_bytes(),
            }
        }
        JobKind::Encaps { pk } => match KemPublicKey::from_bytes(&job.params, pk) {
            Ok(pk) => {
                let mut rng = root.fork(job.seq);
                let (ct, key) = kem.encapsulate(&mut rng, &pk, backend, ledger);
                Reply::Encaps {
                    ct: ct.to_bytes(),
                    shared: *key.as_bytes(),
                }
            }
            Err(e) => Reply::Error(format!("bad public key: {e}")),
        },
        JobKind::Decaps { sk, ct } => {
            let sk = match KemSecretKey::from_bytes(&job.params, sk) {
                Ok(sk) => sk,
                Err(e) => return Reply::Error(format!("bad secret key: {e}")),
            };
            let ct = match Ciphertext::from_bytes(&job.params, ct) {
                Ok(ct) => ct,
                Err(e) => return Reply::Error(format!("bad ciphertext: {e}")),
            };
            let key = kem.decapsulate(&sk, &ct, backend, ledger);
            Reply::Decaps {
                shared: *key.as_bytes(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::NullMeter;

    fn pool(workers: usize, seed: u8) -> ServePool {
        ServePool::new(ServeConfig {
            workers,
            queue_capacity: 4,
            seed: [seed; 32],
            warm_iss: true,
            ..ServeConfig::default()
        })
    }

    /// A batch covering every op on every backend and parameter set.
    fn full_matrix_batch(seed: u8) -> Vec<Job> {
        // Keygen/encaps/decaps chains need matching keys, so build the key
        // material deterministically outside the pool.
        let mut jobs = Vec::new();
        let mut seq = 0u64;
        let root = Sha256CtrRng::from_seed([seed; 32]);
        for params in Params::ALL {
            for kind in BackendKind::ALL {
                let kem = Kem::new(params);
                let mut backend = kind.build();
                let mut rng = root.fork(1_000_000 + seq);
                let (pk, sk) = kem.keygen(&mut rng, backend.as_mut(), &mut NullMeter);
                let (ct, _) = kem.encapsulate(&mut rng, &pk, backend.as_mut(), &mut NullMeter);
                jobs.push(Job::new(seq, params, kind, JobKind::Keygen));
                jobs.push(Job::new(
                    seq + 1,
                    params,
                    kind,
                    JobKind::Encaps { pk: pk.to_bytes() },
                ));
                jobs.push(Job::new(
                    seq + 2,
                    params,
                    kind,
                    JobKind::Decaps {
                        sk: sk.to_bytes(),
                        ct: ct.to_bytes(),
                    },
                ));
                seq += 3;
            }
        }
        jobs
    }

    #[test]
    fn batch_covers_all_params_and_backends() {
        let pool = pool(3, 9);
        let jobs = full_matrix_batch(9);
        let count = jobs.len();
        let replies = pool.submit_batch(jobs);
        assert_eq!(replies.len(), count);
        assert!(replies.iter().all(|r| !r.is_error()), "{replies:?}");
        let snap = pool.snapshot();
        assert_eq!(snap.total_requests() as usize, count);
        assert_eq!(snap.errors, 0);
        assert_eq!(snap.requests[0], 12); // 3 params × 4 backends keygens
        assert!(snap.total_cycles() > 0);
        assert!(snap.latency.count == count as u64);
    }

    #[test]
    fn results_identical_regardless_of_worker_count() {
        // The acceptance-criterion property, at unit-test scale: same seed,
        // same jobs, different worker counts → byte-identical replies.
        let jobs = || {
            let kem = Kem::new(Params::lac128());
            let mut b = BackendKind::Ct.build();
            let mut rng = Sha256CtrRng::seed_from_u64(123);
            let (pk, _) = kem.keygen(&mut rng, b.as_mut(), &mut NullMeter);
            (0..8)
                .map(|i| {
                    Job::new(
                        i,
                        Params::lac128(),
                        BackendKind::Ct,
                        JobKind::Encaps { pk: pk.to_bytes() },
                    )
                })
                .collect::<Vec<_>>()
        };
        let one = pool(1, 5).submit_batch(jobs());
        let four = pool(4, 5).submit_batch(jobs());
        assert_eq!(one, four);
        // Distinct seqs produce distinct ciphertexts.
        assert_ne!(one[0], one[1]);
        // A different root seed produces different results.
        let other = pool(2, 6).submit_batch(jobs());
        assert_ne!(one, other);
    }

    #[test]
    fn malformed_payloads_become_error_replies() {
        let pool = pool(2, 1);
        let params = Params::lac128();
        let replies = pool.submit_batch(vec![
            Job::new(
                0,
                params,
                BackendKind::Ct,
                JobKind::Encaps { pk: vec![1, 2, 3] },
            ),
            Job::new(
                1,
                params,
                BackendKind::Ct,
                JobKind::Decaps {
                    sk: vec![0; params.kem_secret_key_bytes()],
                    ct: vec![0xff; 4],
                },
            ),
            Job::new(2, params, BackendKind::Ct, JobKind::Keygen),
        ]);
        assert!(matches!(&replies[0], Reply::Error(e) if e.contains("bad public key")));
        assert!(matches!(&replies[1], Reply::Error(e) if e.contains("bad ciphertext")));
        assert!(!replies[2].is_error());
        assert_eq!(pool.snapshot().errors, 2);
    }

    #[test]
    fn keygen_then_encaps_then_decaps_through_the_pool_agree() {
        let pool = pool(2, 2);
        let params = Params::lac192();
        let Reply::Keygen { pk, sk } = pool
            .submit(Job::new(0, params, BackendKind::Hw, JobKind::Keygen))
            .wait()
        else {
            panic!("keygen failed")
        };
        let Reply::Encaps { ct, shared } = pool
            .submit(Job::new(1, params, BackendKind::Hw, JobKind::Encaps { pk }))
            .wait()
        else {
            panic!("encaps failed")
        };
        let Reply::Decaps { shared: shared2 } = pool
            .submit(Job::new(
                2,
                params,
                BackendKind::Hw,
                JobKind::Decaps { sk, ct },
            ))
            .wait()
        else {
            panic!("decaps failed")
        };
        assert_eq!(shared, shared2);
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let pool = pool(2, 3);
        let replies = pool.submit_batch(vec![Job::new(
            0,
            Params::lac128(),
            BackendKind::Ct,
            JobKind::Keygen,
        )]);
        assert!(!replies[0].is_error());
        pool.shutdown();
        pool.shutdown();
        // Submitting after shutdown resolves to an error, not a hang.
        let reply = pool
            .submit(Job::new(
                1,
                Params::lac128(),
                BackendKind::Ct,
                JobKind::Keygen,
            ))
            .wait();
        assert!(matches!(reply, Reply::Error(e) if e.contains("shut down")));
    }

    #[test]
    fn warm_probe_runs_on_every_worker_and_shares_blocks() {
        let pool = pool(4, 7);
        let report = pool.warm_report().expect("warm start is on by default");
        assert_eq!(report.probes.len(), 4);
        assert!(report.digests_agree(), "{report:?}");
        for probe in &report.probes {
            // The priming run published every hot block before any worker
            // started, so workers adopt instead of compiling — including
            // the emitted host code on hosts with a JIT backend.
            assert!(probe.shared_installs > 0, "{probe:?}");
            assert_eq!(probe.compiles, 0, "{probe:?}");
            assert_eq!(probe.jit_compiles, 0, "{probe:?}");
            if lac_rv32::jit::host_supported() {
                assert!(probe.jit_shared_installs > 0, "{probe:?}");
            }
        }
        assert!(report.shared.publishes > 0);
        assert!(report.shared.installs >= 4, "{report:?}");
        // A warmed pool still serves jobs normally.
        let replies = pool.submit_batch(vec![Job::new(
            0,
            Params::lac128(),
            BackendKind::Ct,
            JobKind::Keygen,
        )]);
        assert!(!replies[0].is_error());
    }

    #[test]
    fn cold_pool_skips_the_warm_probe_and_serves_identically() {
        let cold = ServePool::new(ServeConfig {
            workers: 2,
            queue_capacity: 4,
            seed: [5; 32],
            warm_iss: false,
            ..ServeConfig::default()
        });
        assert!(cold.warm_report().is_none());
        let jobs = |pool: &ServePool| {
            pool.submit_batch(vec![Job::new(
                0,
                Params::lac128(),
                BackendKind::Ct,
                JobKind::Keygen,
            )])
        };
        // Warm start is a host-speed optimisation only: same seed, same
        // jobs, same replies with or without it.
        assert_eq!(jobs(&cold), jobs(&pool(2, 5)));
    }

    #[test]
    fn try_submit_routes_completions_and_reports_overload() {
        let pool = ServePool::new(ServeConfig {
            workers: 1,
            queue_capacity: 1,
            seed: [8; 32],
            warm_iss: false,
            ..ServeConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        let waker = crate::reactor::Parker::new().waker();
        let job = |seq| Job::new(seq, Params::lac128(), BackendKind::Ct, JobKind::Keygen);
        let sink = |slot| ReplySink::Routed {
            conn: 7,
            slot,
            tx: tx.clone(),
            wake: waker.clone(),
        };
        pool.try_submit(job(0), sink(0)).unwrap();
        // Saturate: capacity 1 with one worker — pushing fast enough must
        // eventually hit Full (the worker may drain the first job, so try
        // until we do).
        let mut accepted = 1u64;
        let mut saw_full = false;
        for slot in 1..100 {
            match pool.try_submit(job(slot), sink(slot)) {
                Ok(()) => accepted += 1,
                Err(SubmitError::Full) => {
                    saw_full = true;
                    break;
                }
                Err(SubmitError::Closed) => panic!("pool is not closed"),
            }
        }
        assert!(saw_full, "a 1-deep queue must overflow under a tight loop");
        // Every accepted job's completion comes back with its routing keys.
        let mut slots = Vec::new();
        for _ in 0..accepted {
            let c = rx
                .recv_timeout(std::time::Duration::from_secs(30))
                .expect("every accepted job completes");
            assert_eq!(c.conn, 7);
            assert!(!c.reply.is_error(), "{:?}", c.reply);
            slots.push(c.slot);
        }
        assert!(slots.contains(&0));
        pool.shutdown();
        assert_eq!(
            pool.try_submit(job(500), sink(500)),
            Err(SubmitError::Closed)
        );
    }

    #[test]
    fn cycle_totals_accumulate_per_worker() {
        let pool = pool(1, 4);
        pool.submit_batch(vec![
            Job::new(0, Params::lac128(), BackendKind::Ct, JobKind::Keygen),
            Job::new(1, Params::lac128(), BackendKind::Hw, JobKind::Keygen),
        ]);
        let totals = pool.worker_cycle_totals();
        assert_eq!(totals.len(), 1);
        assert!(totals[0] > 0);
        assert_eq!(pool.snapshot().makespan_cycles(), totals[0]);
    }
}
