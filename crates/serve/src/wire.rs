//! The length-prefixed binary wire protocol.
//!
//! Every frame is a fixed header followed by a `u32`-length-prefixed
//! payload; all integers are little-endian.
//!
//! ```text
//! request  (18-byte header):
//!   0..2   magic "LS"
//!   2      protocol version (2)
//!   3      opcode   (1 keygen, 2 encaps, 3 decaps, 4 stats, 5 shutdown,
//!                    6 ping, 7 batch, 8 session-open, 9 session-msg,
//!                    10 session-close)
//!   4      params   (1 lac128, 2 lac192, 3 lac256; 0 for stats/shutdown/ping)
//!   5      backend  (1 ref, 2 ct, 3 hw, 4 hw-keccak; 0 likewise)
//!   6..14  seq (u64) — the job's DRBG lane (see lac_rand::Sha256CtrRng::fork)
//!   14..18 payload length (u32)
//!   18..   payload
//!
//! response (8-byte header):
//!   0..2   magic "ls"
//!   2      protocol version (2)
//!   3      status (0 ok, 1 error, 2 busy)
//!   4..8   payload length (u32)
//!   8..    payload
//! ```
//!
//! Status `2` (`BUSY`) is the overload-shedding answer: the server's job
//! queue was full when the request arrived, the request was **not**
//! executed, and the client may retry later. It is additive within
//! version 2 — a client only ever sees it when it has overrun the
//! server, never on a closed-loop exchange within the queue bound.
//!
//! Request payloads: keygen/stats/shutdown/ping — empty; encaps — the
//! serialized public key; decaps — serialized secret key ‖ serialized
//! ciphertext (both lengths are fixed by the parameter set, so no inner
//! framing is needed). Response payloads: keygen — pk ‖ sk; encaps —
//! ct ‖ 32-byte shared secret; decaps — shared secret; stats — the
//! metrics snapshot as JSON text; shutdown/ping — short ASCII acks; error
//! status — a UTF-8 message.
//!
//! **Session framing.** Opcodes 8–10 carry the authenticated-session
//! payloads defined in [`crate::session`]: `SESSION_OPEN` sends
//! `target_id ‖ pk [‖ rekey tag]` (target 0 opens a new session, non-zero
//! rekeys an existing one; seq drives the server-side DRBG fork exactly
//! like a KEM job) and is answered with `id ‖ epoch ‖ ct`;
//! `SESSION_MSG`/`SESSION_CLOSE` carry a sealed
//! [`crate::session::SessionFrame`] and are answered with the echoed
//! plaintext sealed server→client (resp. an empty OK). Session opcodes
//! are not [`batchable`].
//!
//! **Batch framing.** A `BATCH` request amortizes round trips: its outer
//! header carries zeros for params/backend/seq, and its payload packs the
//! constituent KEM requests (only keygen/encaps/decaps may nest):
//!
//! ```text
//! batch request payload:
//!   0..4   item count (u32)
//!   then per item:
//!     0      opcode
//!     1      params code
//!     2      backend code
//!     3..11  seq (u64)
//!     11..15 payload length (u32)
//!     15..   payload
//! ```
//!
//! A `BATCH` reply is **streamed** (protocol version 2): the server first
//! writes an `Ok` *header frame* whose 4-byte payload is the item count,
//! then one standard response frame per item, **in item order**, each
//! flushed as soon as that item's job completes — a client can consume
//! early results while later items are still executing. Items execute
//! across the whole worker pool (see `ServePool::submit_batch_tickets`);
//! a malformed item yields an `Error`-status item frame without failing
//! its siblings. An `Error`-status header frame (in place of the count)
//! means the batch envelope itself could not be parsed, and no item
//! frames follow.

use crate::pool::{Job, JobKind};
use crate::{params_from_code, BackendKind};
use std::io::{self, Read, Write};

/// Request-frame magic.
pub const REQUEST_MAGIC: [u8; 2] = *b"LS";
/// Response-frame magic.
pub const RESPONSE_MAGIC: [u8; 2] = *b"ls";
/// Protocol version this build speaks. Version 2 streams `BATCH` replies
/// as one frame per item (version 1 packed them into a single frame).
pub const VERSION: u8 = 2;
/// Upper bound on payload size (both directions). Generously above the
/// largest legitimate payload (a LAC-256 decaps request is ~3.5 KiB).
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Generate a key pair.
    Keygen,
    /// Encapsulate against the payload public key.
    Encaps,
    /// Decapsulate the payload (sk ‖ ct).
    Decaps,
    /// Fetch a metrics snapshot (JSON payload in the response).
    Stats,
    /// Ask the server to shut down gracefully.
    Shutdown,
    /// Liveness check.
    Ping,
    /// Execute a packed batch of KEM requests across the worker pool.
    Batch,
    /// Open (or rekey) an authenticated session: the payload carries the
    /// client's KEM public key, the server answers with a fresh
    /// encapsulation (see `crate::session` for the payload codecs).
    SessionOpen,
    /// An AEAD-framed message on an open session; the server echoes the
    /// plaintext sealed under its own directional key.
    SessionMsg,
    /// Authenticated close of an open session (empty-body session frame).
    SessionClose,
}

impl Opcode {
    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            Opcode::Keygen => 1,
            Opcode::Encaps => 2,
            Opcode::Decaps => 3,
            Opcode::Stats => 4,
            Opcode::Shutdown => 5,
            Opcode::Ping => 6,
            Opcode::Batch => 7,
            Opcode::SessionOpen => 8,
            Opcode::SessionMsg => 9,
            Opcode::SessionClose => 10,
        }
    }

    /// Decode a wire code.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(Opcode::Keygen),
            2 => Some(Opcode::Encaps),
            3 => Some(Opcode::Decaps),
            4 => Some(Opcode::Stats),
            5 => Some(Opcode::Shutdown),
            6 => Some(Opcode::Ping),
            7 => Some(Opcode::Batch),
            8 => Some(Opcode::SessionOpen),
            9 => Some(Opcode::SessionMsg),
            10 => Some(Opcode::SessionClose),
            _ => None,
        }
    }

    /// Alias for [`Opcode::code`]: the opcode's byte on the wire.
    pub fn to_u8(self) -> u8 {
        self.code()
    }

    /// Alias for [`Opcode::from_code`]: decode an opcode byte.
    pub fn from_u8(code: u8) -> Option<Self> {
        Self::from_code(code)
    }
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFrame {
    /// The operation requested.
    pub opcode: Opcode,
    /// Parameter-set wire code (see [`crate::params_code`]).
    pub params_code: u8,
    /// Backend wire code (see [`BackendKind::code`]).
    pub backend_code: u8,
    /// DRBG lane for the job.
    pub seq: u64,
    /// Opcode-specific payload.
    pub payload: Vec<u8>,
}

impl RequestFrame {
    /// A control frame (stats/shutdown/ping) with no payload.
    pub fn control(opcode: Opcode) -> Self {
        Self {
            opcode,
            params_code: 0,
            backend_code: 0,
            seq: 0,
            payload: Vec::new(),
        }
    }
}

/// Response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Success; payload is the result.
    Ok,
    /// Failure; payload is a UTF-8 message.
    Error,
    /// Overload shed: the job queue was full, the request was not
    /// executed, and the client may retry. Payload is empty.
    Busy,
}

/// A parsed response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFrame {
    /// Outcome of the request.
    pub status: Status,
    /// Status-specific payload.
    pub payload: Vec<u8>,
}

impl ResponseFrame {
    /// A success response.
    pub fn ok(payload: Vec<u8>) -> Self {
        Self {
            status: Status::Ok,
            payload,
        }
    }

    /// An error response carrying `message`.
    pub fn error(message: impl Into<String>) -> Self {
        Self {
            status: Status::Error,
            payload: message.into().into_bytes(),
        }
    }

    /// The shed answer: a `BUSY` status with no payload.
    pub fn busy() -> Self {
        Self {
            status: Status::Busy,
            payload: Vec::new(),
        }
    }

    /// Whether this is an overload-shed (`BUSY`) response.
    pub fn is_busy(&self) -> bool {
        self.status == Status::Busy
    }

    /// The error message, if this is an error response.
    pub fn error_message(&self) -> Option<String> {
        match self.status {
            Status::Ok | Status::Busy => None,
            Status::Error => Some(String::from_utf8_lossy(&self.payload).into_owned()),
        }
    }
}

fn bad_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

fn check_payload_len(len: u32) -> io::Result<usize> {
    if len > MAX_PAYLOAD {
        return Err(bad_data(format!(
            "payload length {len} exceeds the {MAX_PAYLOAD}-byte limit"
        )));
    }
    Ok(len as usize)
}

/// Serialize a request frame.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_request<W: Write>(w: &mut W, frame: &RequestFrame) -> io::Result<()> {
    let mut header = [0u8; 18];
    header[0..2].copy_from_slice(&REQUEST_MAGIC);
    header[2] = VERSION;
    header[3] = frame.opcode.code();
    header[4] = frame.params_code;
    header[5] = frame.backend_code;
    header[6..14].copy_from_slice(&frame.seq.to_le_bytes());
    header[14..18].copy_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&frame.payload)?;
    w.flush()
}

/// Read one request frame. Returns `Ok(None)` on clean EOF (the peer
/// closed the connection between frames).
///
/// # Errors
///
/// I/O errors, bad magic/version/opcode, or an oversized payload.
pub fn read_request<R: Read>(r: &mut R) -> io::Result<Option<RequestFrame>> {
    let mut header = [0u8; 18];
    match r.read_exact(&mut header[..1]) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    r.read_exact(&mut header[1..])?;
    if header[0..2] != REQUEST_MAGIC {
        return Err(bad_data(format!(
            "bad request magic {:02x}{:02x}",
            header[0], header[1]
        )));
    }
    if header[2] != VERSION {
        return Err(bad_data(format!(
            "unsupported protocol version {} (this build speaks {VERSION})",
            header[2]
        )));
    }
    let opcode = Opcode::from_code(header[3])
        .ok_or_else(|| bad_data(format!("unknown opcode {}", header[3])))?;
    let seq = u64::from_le_bytes(header[6..14].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(header[14..18].try_into().expect("4 bytes"));
    let mut payload = vec![0u8; check_payload_len(len)?];
    r.read_exact(&mut payload)?;
    Ok(Some(RequestFrame {
        opcode,
        params_code: header[4],
        backend_code: header[5],
        seq,
        payload,
    }))
}

/// Request-frame header size on the wire.
pub const REQUEST_HEADER: usize = 18;

/// Incremental request-frame decoder for nonblocking sockets.
///
/// The event-driven server reads whatever bytes the kernel has and feeds
/// them in with [`FrameDecoder::feed`]; [`FrameDecoder::next_frame`]
/// yields complete frames as they materialize, independent of how the
/// byte stream was split across reads. Header validation (magic, version,
/// opcode, payload bound) happens as soon as the 18 header bytes are
/// present, so an oversized length claim is rejected before any payload
/// is buffered.
///
/// # Example
///
/// ```
/// use lac_serve::wire::{self, FrameDecoder, Opcode, RequestFrame};
///
/// let mut bytes = Vec::new();
/// wire::write_request(&mut bytes, &RequestFrame::control(Opcode::Ping)).unwrap();
/// let mut dec = FrameDecoder::new();
/// let (a, b) = bytes.split_at(5); // arbitrary split mid-header
/// dec.feed(a);
/// assert!(dec.next_frame().unwrap().is_none());
/// dec.feed(b);
/// assert_eq!(dec.next_frame().unwrap().unwrap().opcode, Opcode::Ping);
/// ```
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    at: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw bytes from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the consumed prefix dominates the
        // buffer, so steady-state feeds are a plain append.
        if self.at > 0 && self.at * 2 >= self.buf.len() {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Whether a frame is sitting half-received in the buffer — the
    /// read-timeout trigger: a peer that starts a frame must finish it.
    pub fn has_partial(&self) -> bool {
        self.buffered() > 0
    }

    /// Decode the next complete frame, if the buffer holds one.
    ///
    /// # Errors
    ///
    /// A protocol violation (bad magic/version/opcode, oversized payload
    /// claim). The connection is beyond recovery at that point — framing
    /// is lost — so the caller should close it.
    pub fn next_frame(&mut self) -> Result<Option<RequestFrame>, String> {
        let pending = &self.buf[self.at..];
        if pending.len() < REQUEST_HEADER {
            return Ok(None);
        }
        let header = &pending[..REQUEST_HEADER];
        if header[0..2] != REQUEST_MAGIC {
            return Err(format!(
                "bad request magic {:02x}{:02x}",
                header[0], header[1]
            ));
        }
        if header[2] != VERSION {
            return Err(format!(
                "unsupported protocol version {} (this build speaks {VERSION})",
                header[2]
            ));
        }
        let opcode =
            Opcode::from_code(header[3]).ok_or_else(|| format!("unknown opcode {}", header[3]))?;
        let len = u32::from_le_bytes(header[14..18].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            return Err(format!(
                "payload length {len} exceeds the {MAX_PAYLOAD}-byte limit"
            ));
        }
        let len = len as usize;
        if pending.len() < REQUEST_HEADER + len {
            return Ok(None);
        }
        let frame = RequestFrame {
            opcode,
            params_code: header[4],
            backend_code: header[5],
            seq: u64::from_le_bytes(header[6..14].try_into().expect("8 bytes")),
            payload: pending[REQUEST_HEADER..REQUEST_HEADER + len].to_vec(),
        };
        self.at += REQUEST_HEADER + len;
        if self.at == self.buf.len() {
            self.buf.clear();
            self.at = 0;
        }
        Ok(Some(frame))
    }
}

/// Serialize a response frame.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_response<W: Write>(w: &mut W, frame: &ResponseFrame) -> io::Result<()> {
    let mut header = [0u8; 8];
    header[0..2].copy_from_slice(&RESPONSE_MAGIC);
    header[2] = VERSION;
    header[3] = match frame.status {
        Status::Ok => 0,
        Status::Error => 1,
        Status::Busy => 2,
    };
    header[4..8].copy_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&frame.payload)?;
    w.flush()
}

/// Read one response frame.
///
/// # Errors
///
/// I/O errors (including EOF mid-frame), bad magic/version/status, or an
/// oversized payload.
pub fn read_response<R: Read>(r: &mut R) -> io::Result<ResponseFrame> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    if header[0..2] != RESPONSE_MAGIC {
        return Err(bad_data(format!(
            "bad response magic {:02x}{:02x}",
            header[0], header[1]
        )));
    }
    if header[2] != VERSION {
        return Err(bad_data(format!(
            "unsupported protocol version {}",
            header[2]
        )));
    }
    let status = match header[3] {
        0 => Status::Ok,
        1 => Status::Error,
        2 => Status::Busy,
        other => return Err(bad_data(format!("unknown status byte {other}"))),
    };
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    let mut payload = vec![0u8; check_payload_len(len)?];
    r.read_exact(&mut payload)?;
    Ok(ResponseFrame { status, payload })
}

/// Per-item header size inside a batch request payload.
const BATCH_ITEM_HEADER: usize = 15;

/// Whether an opcode may appear inside a batch (only KEM work nests;
/// control frames would make item ordering ambiguous).
pub fn batchable(opcode: Opcode) -> bool {
    matches!(opcode, Opcode::Keygen | Opcode::Encaps | Opcode::Decaps)
}

/// Pack KEM request frames into a `BATCH` payload (see the module docs
/// for the layout).
///
/// # Panics
///
/// Panics if an item is not [`batchable`] — the caller builds these
/// frames, so a control opcode here is a programming error, not input.
pub fn encode_batch(items: &[RequestFrame]) -> Vec<u8> {
    let body: usize = items
        .iter()
        .map(|i| BATCH_ITEM_HEADER + i.payload.len())
        .sum();
    let mut out = Vec::with_capacity(4 + body);
    out.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for item in items {
        assert!(batchable(item.opcode), "only KEM opcodes nest in a batch");
        out.push(item.opcode.code());
        out.push(item.params_code);
        out.push(item.backend_code);
        out.extend_from_slice(&item.seq.to_le_bytes());
        out.extend_from_slice(&(item.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&item.payload);
    }
    out
}

/// Unpack a `BATCH` request payload into its item frames.
///
/// # Errors
///
/// A truncated envelope, an item count inconsistent with the payload
/// size, a non-KEM item opcode, or an oversized item payload.
pub fn decode_batch(payload: &[u8]) -> Result<Vec<RequestFrame>, String> {
    let count_bytes: [u8; 4] = payload
        .get(..4)
        .and_then(|b| b.try_into().ok())
        .ok_or("batch payload shorter than its count field")?;
    let count = u32::from_le_bytes(count_bytes) as usize;
    // Each item needs at least its header, so an absurd count is caught
    // before any allocation.
    if count.saturating_mul(BATCH_ITEM_HEADER) > payload.len() {
        return Err(format!(
            "batch count {count} impossible for a {}-byte payload",
            payload.len()
        ));
    }
    let mut items = Vec::with_capacity(count);
    let mut at = 4usize;
    for index in 0..count {
        let header = payload
            .get(at..at + BATCH_ITEM_HEADER)
            .ok_or_else(|| format!("batch item {index} header truncated"))?;
        let opcode = Opcode::from_code(header[0])
            .filter(|&op| batchable(op))
            .ok_or_else(|| format!("batch item {index} has non-KEM opcode {}", header[0]))?;
        let seq = u64::from_le_bytes(header[3..11].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(header[11..15].try_into().expect("4 bytes"));
        let len = check_payload_len(len).map_err(|e| format!("batch item {index}: {e}"))?;
        at += BATCH_ITEM_HEADER;
        let body = payload
            .get(at..at + len)
            .ok_or_else(|| format!("batch item {index} payload truncated"))?;
        at += len;
        items.push(RequestFrame {
            opcode,
            params_code: header[1],
            backend_code: header[2],
            seq,
            payload: body.to_vec(),
        });
    }
    if at != payload.len() {
        return Err(format!(
            "batch payload has {} trailing bytes after {count} items",
            payload.len() - at
        ));
    }
    Ok(items)
}

/// The header frame opening a streamed `BATCH` reply: an `Ok` frame whose
/// payload is the little-endian item count. One response frame per item
/// follows, in item order.
pub fn batch_header(count: usize) -> ResponseFrame {
    ResponseFrame::ok((count as u32).to_le_bytes().to_vec())
}

/// Parse a streamed-batch header frame into its item count.
///
/// # Errors
///
/// An `Error`-status frame (the server's envelope error, passed through)
/// or a malformed count payload.
pub fn parse_batch_header(frame: &ResponseFrame) -> Result<usize, String> {
    if let Some(message) = frame.error_message() {
        return Err(message);
    }
    let count: [u8; 4] = frame
        .payload
        .as_slice()
        .try_into()
        .map_err(|_| format!("batch header payload is {} B, want 4", frame.payload.len()))?;
    Ok(u32::from_le_bytes(count) as usize)
}

/// Turn an operation request frame into a pool [`Job`].
///
/// # Errors
///
/// Control opcodes (stats/shutdown/ping) and malformed codes or payload
/// sizes are rejected with a message suitable for an error response.
pub fn frame_to_job(frame: &RequestFrame) -> Result<Job, String> {
    let params = params_from_code(frame.params_code)
        .ok_or_else(|| format!("unknown parameter-set code {}", frame.params_code))?;
    let backend = BackendKind::from_code(frame.backend_code)
        .ok_or_else(|| format!("unknown backend code {}", frame.backend_code))?;
    let kind = match frame.opcode {
        Opcode::Keygen => {
            if !frame.payload.is_empty() {
                return Err("keygen takes no payload".into());
            }
            JobKind::Keygen
        }
        Opcode::Encaps => JobKind::Encaps {
            pk: frame.payload.clone(),
        },
        Opcode::Decaps => {
            let sk_len = params.kem_secret_key_bytes();
            let ct_len = params.ciphertext_bytes();
            if frame.payload.len() != sk_len + ct_len {
                return Err(format!(
                    "decaps payload must be sk ({sk_len} B) ‖ ct ({ct_len} B), got {} B",
                    frame.payload.len()
                ));
            }
            JobKind::Decaps {
                sk: frame.payload[..sk_len].to_vec(),
                ct: frame.payload[sk_len..].to_vec(),
            }
        }
        op => return Err(format!("opcode {op:?} is not a KEM job")),
    };
    Ok(Job::new(frame.seq, params, backend, kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params_code;
    use lac::Params;
    use std::io::Cursor;

    fn roundtrip_request(frame: &RequestFrame) -> RequestFrame {
        let mut buf = Vec::new();
        write_request(&mut buf, frame).unwrap();
        read_request(&mut Cursor::new(buf)).unwrap().unwrap()
    }

    #[test]
    fn request_frames_roundtrip() {
        let frames = [
            RequestFrame {
                opcode: Opcode::Encaps,
                params_code: params_code(&Params::lac256()),
                backend_code: BackendKind::Hw.code(),
                seq: 0xDEAD_BEEF_1234,
                payload: vec![7u8; 1056],
            },
            RequestFrame::control(Opcode::Stats),
            RequestFrame::control(Opcode::Shutdown),
            RequestFrame::control(Opcode::Ping),
        ];
        for frame in &frames {
            assert_eq!(&roundtrip_request(frame), frame);
        }
    }

    #[test]
    fn response_frames_roundtrip() {
        for frame in [
            ResponseFrame::ok(vec![1, 2, 3]),
            ResponseFrame::ok(Vec::new()),
            ResponseFrame::error("bad public key"),
        ] {
            let mut buf = Vec::new();
            write_response(&mut buf, &frame).unwrap();
            let back = read_response(&mut Cursor::new(buf)).unwrap();
            assert_eq!(back, frame);
        }
        assert_eq!(
            ResponseFrame::error("nope").error_message().as_deref(),
            Some("nope")
        );
        assert_eq!(ResponseFrame::ok(vec![]).error_message(), None);
    }

    #[test]
    fn busy_frames_roundtrip() {
        let frame = ResponseFrame::busy();
        assert!(frame.is_busy());
        assert_eq!(frame.error_message(), None);
        let mut buf = Vec::new();
        write_response(&mut buf, &frame).unwrap();
        assert_eq!(buf[3], 2);
        assert_eq!(read_response(&mut Cursor::new(buf)).unwrap(), frame);
    }

    #[test]
    fn decoder_yields_frames_across_arbitrary_splits() {
        let frames = [
            RequestFrame {
                opcode: Opcode::Encaps,
                params_code: 1,
                backend_code: 3,
                seq: 42,
                payload: vec![5u8; 99],
            },
            RequestFrame::control(Opcode::Ping),
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            write_request(&mut bytes, f).unwrap();
        }
        // Feed one byte at a time — the most hostile split.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &bytes {
            dec.feed(std::slice::from_ref(b));
            while let Some(frame) = dec.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, frames);
        assert!(!dec.has_partial());
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_rejects_protocol_violations_without_buffering_payloads() {
        // Oversized length claim: rejected as soon as the header lands.
        let mut buf = Vec::new();
        buf.extend_from_slice(&REQUEST_MAGIC);
        buf.push(VERSION);
        buf.push(Opcode::Keygen.code());
        buf.extend_from_slice(&[1, 2]);
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        assert!(dec.next_frame().unwrap_err().contains("exceeds"));

        // Bad magic / version / opcode.
        for (at, val, what) in [(0, b'X', "magic"), (2, 9, "version"), (3, 200, "opcode")] {
            let mut good = Vec::new();
            write_request(&mut good, &RequestFrame::control(Opcode::Ping)).unwrap();
            good[at] = val;
            let mut dec = FrameDecoder::new();
            dec.feed(&good);
            assert!(dec.next_frame().unwrap_err().contains(what), "{what}");
        }
    }

    #[test]
    fn clean_eof_between_frames_is_none() {
        assert!(read_request(&mut Cursor::new(Vec::<u8>::new()))
            .unwrap()
            .is_none());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            &RequestFrame {
                opcode: Opcode::Encaps,
                params_code: 1,
                backend_code: 2,
                seq: 1,
                payload: vec![0u8; 100],
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 10);
        assert!(read_request(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn bad_magic_version_opcode_status_rejected() {
        let mut good = Vec::new();
        write_request(&mut good, &RequestFrame::control(Opcode::Ping)).unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(read_request(&mut Cursor::new(bad)).is_err());

        let mut bad = good.clone();
        bad[2] = 9;
        let err = read_request(&mut Cursor::new(bad)).unwrap_err();
        assert!(err.to_string().contains("version"));

        let mut bad = good.clone();
        bad[3] = 200;
        assert!(read_request(&mut Cursor::new(bad)).is_err());

        let mut resp = Vec::new();
        write_response(&mut resp, &ResponseFrame::ok(vec![])).unwrap();
        let mut bad = resp.clone();
        bad[3] = 7;
        assert!(read_response(&mut Cursor::new(bad)).is_err());
    }

    #[test]
    fn oversized_payload_length_rejected_without_allocation() {
        // Hand-craft a header claiming a 100 MiB payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&REQUEST_MAGIC);
        buf.push(VERSION);
        buf.push(Opcode::Keygen.code());
        buf.push(1);
        buf.push(2);
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&(100u32 << 20).to_le_bytes());
        let err = read_request(&mut Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn batch_payloads_roundtrip() {
        let params = Params::lac128();
        let items = vec![
            RequestFrame {
                opcode: Opcode::Keygen,
                params_code: params_code(&params),
                backend_code: BackendKind::Ct.code(),
                seq: 10,
                payload: Vec::new(),
            },
            RequestFrame {
                opcode: Opcode::Encaps,
                params_code: params_code(&Params::lac256()),
                backend_code: BackendKind::Hw.code(),
                seq: 11,
                payload: vec![9u8; 1056],
            },
        ];
        let back = decode_batch(&encode_batch(&items)).unwrap();
        assert_eq!(back, items);
        assert_eq!(decode_batch(&encode_batch(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn batch_header_frames_roundtrip_and_pass_errors_through() {
        assert_eq!(parse_batch_header(&batch_header(0)).unwrap(), 0);
        assert_eq!(parse_batch_header(&batch_header(7)).unwrap(), 7);
        assert!(parse_batch_header(&ResponseFrame::error("bad count"))
            .unwrap_err()
            .contains("bad count"));
        assert!(parse_batch_header(&ResponseFrame::ok(vec![1, 2]))
            .unwrap_err()
            .contains("want 4"));
    }

    #[test]
    fn malformed_batch_payloads_rejected() {
        // Truncated count field.
        assert!(decode_batch(&[1, 0]).is_err());

        // Count impossible for the payload size (no allocation attempted).
        let mut huge = (u32::MAX).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0u8; 16]);
        assert!(decode_batch(&huge).unwrap_err().contains("impossible"));

        // Control opcodes may not nest.
        let mut bad = 1u32.to_le_bytes().to_vec();
        bad.push(Opcode::Shutdown.code());
        bad.extend_from_slice(&[0u8; BATCH_ITEM_HEADER - 1]);
        assert!(decode_batch(&bad).unwrap_err().contains("non-KEM"));

        // Trailing garbage after the declared items.
        let mut trailing = encode_batch(&[RequestFrame {
            opcode: Opcode::Keygen,
            params_code: 1,
            backend_code: 2,
            seq: 0,
            payload: Vec::new(),
        }]);
        trailing.push(0xFF);
        assert!(decode_batch(&trailing).unwrap_err().contains("trailing"));

        // Truncated item payload.
        let mut short = encode_batch(&[RequestFrame {
            opcode: Opcode::Encaps,
            params_code: 1,
            backend_code: 2,
            seq: 0,
            payload: vec![7u8; 20],
        }]);
        short.truncate(short.len() - 5);
        assert!(decode_batch(&short).unwrap_err().contains("truncated"));
    }

    #[test]
    fn frame_to_job_parses_ops_and_rejects_garbage() {
        let params = Params::lac128();
        let frame = RequestFrame {
            opcode: Opcode::Decaps,
            params_code: params_code(&params),
            backend_code: BackendKind::Ct.code(),
            seq: 3,
            payload: vec![0u8; params.kem_secret_key_bytes() + params.ciphertext_bytes()],
        };
        let job = frame_to_job(&frame).unwrap();
        assert!(matches!(job.kind, JobKind::Decaps { .. }));
        assert_eq!(job.seq, 3);

        // Wrong decaps payload size.
        let mut bad = frame.clone();
        bad.payload.pop();
        assert!(frame_to_job(&bad).unwrap_err().contains("decaps payload"));

        // Unknown params / backend codes.
        let mut bad = frame.clone();
        bad.params_code = 77;
        assert!(frame_to_job(&bad).is_err());
        let mut bad = frame.clone();
        bad.backend_code = 0;
        assert!(frame_to_job(&bad).is_err());

        // Control frames are not jobs.
        assert!(frame_to_job(&RequestFrame::control(Opcode::Stats)).is_err());

        // Keygen with a stray payload is rejected.
        let bad = RequestFrame {
            opcode: Opcode::Keygen,
            params_code: params_code(&params),
            backend_code: BackendKind::Ct.code(),
            seq: 0,
            payload: vec![1],
        };
        assert!(frame_to_job(&bad).is_err());
    }
}
