//! A minimal std-only readiness layer for the event-driven server.
//!
//! There is no `epoll`/`poll` binding in a zero-dependency workspace, so
//! readiness is *level-triggered by attempt*: the reactor simply tries the
//! nonblocking operation and treats `WouldBlock` as "not ready". What this
//! module adds on top of raw `std::net` is the glue that makes an event
//! loop out of that:
//!
//! - [`try_read`] / [`try_write`] / [`try_write_vectored`] /
//!   [`try_accept`] classify nonblocking socket results into an
//!   [`IoStatus`] the connection state machine can match on (`Ready` /
//!   `NotReady` / `Closed` / `Failed`), folding away `EINTR` and the
//!   `WouldBlock` dance; the vectored form lets a shard flush many queued
//!   reply frames in one syscall.
//! - [`Parker`] / [`Waker`] implement the wakeup channel with the
//!   fiber-parking idiom (the shape r2vm uses to schedule its fibers):
//!   the reactor thread parks between passes; any thread holding a
//!   [`Waker`] — here, pool workers finishing a routed job — unparks it.
//!   `unpark` on a thread that is not parked makes its *next* park return
//!   immediately, so a wakeup raced against the reactor's own pass is
//!   never lost; the park timeout bounds timer latency. With sharded
//!   reactors every shard has its *own* parker, and workers wake only the
//!   shard that owns the completed job's connection.
//! - [`TokenBucket`] meters the accept rate.
//! - [`thread_cpu_ns`] reads the calling thread's CPU clock, the basis of
//!   per-shard busy-time accounting (front-end scaling numbers).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Outcome of one nonblocking socket attempt.
#[derive(Debug)]
pub enum IoStatus {
    /// The operation moved `n > 0` bytes (or accepted a connection).
    Ready(usize),
    /// The socket is not ready (`WouldBlock`/`EINTR`); try again on a
    /// later pass.
    NotReady,
    /// The peer closed the stream (EOF on read).
    Closed,
    /// A terminal socket error; the connection is unusable.
    Failed,
}

fn classify(err: &io::Error) -> IoStatus {
    match err.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted => IoStatus::NotReady,
        _ => IoStatus::Failed,
    }
}

/// Attempt a nonblocking read into `buf`.
pub fn try_read(stream: &mut TcpStream, buf: &mut [u8]) -> IoStatus {
    match stream.read(buf) {
        Ok(0) => IoStatus::Closed,
        Ok(n) => IoStatus::Ready(n),
        Err(e) => classify(&e),
    }
}

/// Attempt a nonblocking write of (a prefix of) `buf`.
pub fn try_write(stream: &mut TcpStream, buf: &[u8]) -> IoStatus {
    match stream.write(buf) {
        // A 0-byte write on a non-empty buffer means the peer is gone.
        Ok(0) => IoStatus::Closed,
        Ok(n) => IoStatus::Ready(n),
        Err(e) => classify(&e),
    }
}

/// Attempt a nonblocking vectored write: one syscall pushing as much of
/// the slice sequence as the socket will take. The caller guarantees the
/// slices hold at least one byte in total, so a 0-byte result means the
/// peer is gone (same contract as [`try_write`]).
pub fn try_write_vectored(stream: &mut TcpStream, bufs: &[io::IoSlice<'_>]) -> IoStatus {
    match stream.write_vectored(bufs) {
        Ok(0) => IoStatus::Closed,
        Ok(n) => IoStatus::Ready(n),
        Err(e) => classify(&e),
    }
}

/// Attempt a nonblocking accept. `Ready` carries the new stream.
pub fn try_accept(listener: &TcpListener) -> Result<TcpStream, IoStatus> {
    match listener.accept() {
        Ok((stream, _peer)) => Ok(stream),
        Err(e) => Err(classify(&e)),
    }
}

/// CPU time consumed by the *calling thread*, in nanoseconds.
///
/// This is what shard-scaling numbers are built from: on a host with
/// fewer cores than reactor shards the shards timeshare, so wall-clock
/// throughput cannot show the parallelism — but per-thread CPU time
/// attributes each shard's work to that shard regardless of scheduling,
/// and `completions / busiest-shard CPU` is the front-end analogue of the
/// pool's modelled `requests / busiest-worker cycles` makespan metric.
///
/// Implemented as a raw `clock_gettime(CLOCK_THREAD_CPUTIME_ID)` syscall
/// on x86-64 Linux (the workspace carries no libc crate; same approach as
/// the JIT's `mmap`). Unsupported hosts return 0 and the scaling metric
/// degrades to "unavailable" rather than lying with wall time.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub fn thread_cpu_ns() -> u64 {
    const SYS_CLOCK_GETTIME: isize = 228;
    const CLOCK_THREAD_CPUTIME_ID: usize = 3;
    let mut ts = [0i64; 2]; // { tv_sec, tv_nsec }
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_CLOCK_GETTIME => ret,
            in("rdi") CLOCK_THREAD_CPUTIME_ID,
            in("rsi") ts.as_mut_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    if ret != 0 {
        return 0;
    }
    (ts[0] as u64).saturating_mul(1_000_000_000) + ts[1] as u64
}

/// Fallback for hosts without the raw-syscall path: no per-thread CPU
/// clock, so shard busy-time accounting reports 0 ("unavailable").
#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
pub fn thread_cpu_ns() -> u64 {
    0
}

/// A handle that wakes a parked [`Parker`] thread. Cheap to clone; safe
/// to call from any thread.
#[derive(Clone)]
pub struct Waker(std::thread::Thread);

impl Waker {
    /// Wake the parker (idempotent; a wake with nobody parked arms the
    /// next park to return immediately).
    pub fn wake(&self) {
        self.0.unpark();
    }
}

/// The reactor thread's side of the wakeup channel. Construct on the
/// thread that will park.
pub struct Parker {
    thread: std::thread::Thread,
}

impl Parker {
    /// A parker for the current thread.
    pub fn new() -> Self {
        Self {
            thread: std::thread::current(),
        }
    }

    /// A waker for this parker, to hand to other threads.
    pub fn waker(&self) -> Waker {
        Waker(self.thread.clone())
    }

    /// Park the current thread for at most `timeout`, returning early on
    /// any [`Waker::wake`] (including ones issued before the call).
    ///
    /// # Panics
    ///
    /// Panics if called from a thread other than the one that constructed
    /// this parker — parking someone else's thread is always a bug.
    pub fn park(&self, timeout: Duration) {
        assert_eq!(
            std::thread::current().id(),
            self.thread.id(),
            "Parker::park must run on its own thread"
        );
        std::thread::park_timeout(timeout);
    }
}

impl Default for Parker {
    fn default() -> Self {
        Self::new()
    }
}

/// A token bucket metering events per second, refilled by elapsed wall
/// time; burst capacity is one second's worth of tokens. A rate of 0
/// means unlimited.
pub struct TokenBucket {
    rate: u64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket allowing `rate` events/second (0 = unlimited), starting
    /// full.
    pub fn new(rate: u64) -> Self {
        Self {
            rate,
            tokens: rate as f64,
            last: Instant::now(),
        }
    }

    /// Take one token if available. Always true for an unlimited bucket.
    pub fn try_take(&mut self) -> bool {
        if self.rate == 0 {
            return true;
        }
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate as f64).min(self.rate as f64);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn waker_cuts_a_park_short_even_when_sent_first() {
        let parker = Parker::new();
        // Wake *before* parking: the token is banked, the park returns
        // immediately instead of sleeping out the timeout.
        parker.waker().wake();
        let start = Instant::now();
        parker.park(Duration::from_secs(5));
        assert!(start.elapsed() < Duration::from_secs(1));

        // Wake from another thread while parked.
        let waker = parker.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let start = Instant::now();
        parker.park(Duration::from_secs(5));
        assert!(start.elapsed() < Duration::from_secs(1));
        t.join().unwrap();
    }

    #[test]
    fn nonblocking_accept_and_read_classify_not_ready() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        assert!(matches!(
            try_accept(&listener),
            Err(IoStatus::NotReady) | Err(IoStatus::Failed)
        ));

        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut accepted = loop {
            match try_accept(&listener) {
                Ok(s) => break s,
                Err(IoStatus::NotReady) => std::thread::sleep(Duration::from_millis(1)),
                Err(other) => panic!("accept failed: {other:?}"),
            }
        };
        accepted.set_nonblocking(true).unwrap();
        let mut buf = [0u8; 16];
        assert!(matches!(
            try_read(&mut accepted, &mut buf),
            IoStatus::NotReady
        ));
        drop(peer);
        // Peer gone: read eventually reports Closed.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match try_read(&mut accepted, &mut buf) {
                IoStatus::Closed => break,
                IoStatus::NotReady if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                other => panic!("expected Closed, got {other:?}"),
            }
        }
    }

    #[test]
    fn vectored_write_moves_multiple_slices() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        let parts: [&[u8]; 3] = [b"one", b"two2", b"three33"];
        let slices: Vec<io::IoSlice> = parts.iter().map(|p| io::IoSlice::new(p)).collect();
        let total: usize = parts.iter().map(|p| p.len()).sum();
        match try_write_vectored(&mut accepted, &slices) {
            IoStatus::Ready(n) => assert!(n > 0 && n <= total, "wrote {n}"),
            other => panic!("expected Ready, got {other:?}"),
        }
        let mut buf = vec![0u8; total];
        peer.read_exact(&mut buf).unwrap();
        assert_eq!(buf, b"onetwo2three33");
    }

    #[test]
    fn thread_cpu_clock_monotonic_and_charges_work() {
        let t0 = thread_cpu_ns();
        // Burn a little CPU; the clock must advance (x86-64 Linux) or stay
        // pinned at the 0 fallback (other hosts) — never go backwards.
        let mut acc = 0u64;
        for i in 0..200_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let t1 = thread_cpu_ns();
        assert!(t1 >= t0, "thread CPU clock went backwards: {t0} -> {t1}");
        if cfg!(all(target_arch = "x86_64", target_os = "linux")) {
            assert!(t1 > 0, "CPU clock should be available on this host");
        }
    }

    #[test]
    fn token_bucket_meters_and_unlimited_never_blocks() {
        let mut unlimited = TokenBucket::new(0);
        for _ in 0..10_000 {
            assert!(unlimited.try_take());
        }

        // A 5/s bucket starts with a 5-token burst, then runs dry within
        // this tight loop (refill over a few microseconds is ≪ 1 token).
        let mut bucket = TokenBucket::new(5);
        let granted = (0..1000).filter(|_| bucket.try_take()).count();
        assert!((5..=20).contains(&granted), "granted {granted}");
    }
}
