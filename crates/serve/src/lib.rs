//! `lac-serve` — a batched, multi-worker serving layer over the LAC KEM.
//!
//! The paper accelerates single KEM operations; this crate turns the
//! reproduction into a *system* that serves KEM traffic: a worker pool
//! executes keygen/encaps/decaps jobs across all parameter sets and all
//! backends, a length-prefixed binary protocol exposes the pool over TCP,
//! and live metrics (request counters, queue high-water mark, latency
//! histograms, per-worker modelled cycle totals) are available both in
//! process and via a `STATS` protocol request. Everything is built on
//! `std` only — `std::thread`, `Mutex`/`Condvar`, `TcpListener` — keeping
//! the workspace hermetic.
//!
//! Layers, bottom-up:
//!
//! * [`queue`] — a bounded MPMC channel on `Mutex` + `Condvar` with
//!   blocking backpressure and close-and-drain shutdown;
//! * [`metrics`] — atomic counters and fixed-bucket latency histograms;
//! * [`pool`] — [`pool::ServePool`]: worker threads, each owning its own
//!   backends and per-parameter-set [`lac::Kem`] instances, with per-job
//!   DRBG lanes forked from a root seed ([`lac_rand::Sha256CtrRng::fork`])
//!   so results are byte-identical regardless of worker count;
//! * [`wire`] — the framed request/response protocol, with an incremental
//!   [`wire::FrameDecoder`] for nonblocking reads;
//! * [`reactor`] — a std-only readiness layer (nonblocking I/O
//!   classification, vectored writes, park/unpark wakeups, accept-rate
//!   token bucket, per-thread CPU clocks);
//! * [`server`] — a sharded multi-reactor event loop (`reactors` shards,
//!   each owning a disjoint set of connections dealt round-robin at
//!   accept, plus a disjoint stride of the session-id space): per-shard
//!   state machines, ordered reply slots flushed with vectored writes,
//!   overload shedding (`BUSY`), connection caps, per-shard timeouts and
//!   graceful drain;
//! * [`session`] — authenticated long-lived channels over the KEM
//!   (`lac-session`): KEM-negotiated directional keys, AEAD-style frame
//!   sealing, epoch-tagged rekeying, and a bounded sharded LRU session
//!   table — the reactor binds it to opcodes `SessionOpen`/`SessionMsg`/
//!   `SessionClose`;
//! * [`client`] — blocking `std::net` endpoint speaking [`wire`], with
//!   optional connect/read/write deadlines;
//! * [`bench`] — closed-loop *and* open-loop (target-QPS) load generators
//!   reporting wall-clock, modelled multi-core throughput, and
//!   interpolated tail latency (p50/p99/p999).
//!
//! # Determinism
//!
//! A job's randomness is `root_rng.fork(seq)` where `seq` is the job's
//! sequence number: it depends only on the root seed and `seq`, never on
//! scheduling. Two runs with the same seed and the same per-job sequence
//! numbers produce identical keys/ciphertexts/shared secrets whether the
//! pool has 1 worker or 64.
//!
//! # Example
//!
//! ```
//! use lac_serve::pool::{Job, JobKind, Reply, ServeConfig, ServePool};
//! use lac_serve::BackendKind;
//! use lac::Params;
//!
//! let pool = ServePool::new(ServeConfig {
//!     workers: 2,
//!     queue_capacity: 8,
//!     seed: [7u8; 32],
//!     warm_iss: true,
//!     ..ServeConfig::default()
//! });
//! let jobs = vec![
//!     Job::new(0, Params::lac128(), BackendKind::Ct, JobKind::Keygen),
//!     Job::new(1, Params::lac192(), BackendKind::Hw, JobKind::Keygen),
//! ];
//! let replies = pool.submit_batch(jobs);
//! assert!(matches!(replies[0], Reply::Keygen { .. }));
//! assert!(matches!(replies[1], Reply::Keygen { .. }));
//! ```

#![warn(missing_docs)]

pub mod bench;
pub mod client;
pub mod metrics;
pub mod pool;
pub mod queue;
pub mod reactor;
pub mod server;
pub mod session;
pub mod wire;

use lac::{AcceleratedBackend, Backend, KeccakAcceleratedBackend, Params, SoftwareBackend};

/// The KEM operations the pool serves (also the metrics axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Key-pair generation.
    Keygen,
    /// Encapsulation against a supplied public key.
    Encaps,
    /// Decapsulation of a supplied ciphertext.
    Decaps,
}

impl Op {
    /// All operations, in counter-index order.
    pub const ALL: [Op; 3] = [Op::Keygen, Op::Encaps, Op::Decaps];

    /// Stable index into per-op counter arrays.
    pub fn index(self) -> usize {
        match self {
            Op::Keygen => 0,
            Op::Encaps => 1,
            Op::Decaps => 2,
        }
    }

    /// Lower-case label ("keygen" | "encaps" | "decaps").
    pub fn label(self) -> &'static str {
        match self {
            Op::Keygen => "keygen",
            Op::Encaps => "encaps",
            Op::Decaps => "decaps",
        }
    }

    /// Parse a label as printed by [`Op::label`].
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "keygen" => Ok(Op::Keygen),
            "encaps" => Ok(Op::Encaps),
            "decaps" => Ok(Op::Decaps),
            other => Err(format!(
                "unknown op '{other}' (expected keygen|encaps|decaps)"
            )),
        }
    }
}

/// Which execution backend a job runs on.
///
/// This mirrors the CLI's `--backend` axis: the two software profiles, the
/// paper's PQ-ALU accelerator model, and the future-work Keccak variant.
/// Workers build their *own* instance of each (backends are cheap owned
/// state and `Backend: Send`), so no locking happens on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// `SoftwareBackend::reference()` — submission-style variable-time BCH.
    Ref,
    /// `SoftwareBackend::constant_time()` — Walters-style constant-time BCH.
    Ct,
    /// `AcceleratedBackend` — MUL TER + SHA256 unit + MUL CHIEN.
    Hw,
    /// `KeccakAcceleratedBackend` — the §VI future-work Keccak-hash variant
    /// (not interoperable with the SHA-256 backends).
    HwKeccak,
}

impl BackendKind {
    /// All backends, in wire-code order.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Ref,
        BackendKind::Ct,
        BackendKind::Hw,
        BackendKind::HwKeccak,
    ];

    /// CLI/wire label.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Ref => "ref",
            BackendKind::Ct => "ct",
            BackendKind::Hw => "hw",
            BackendKind::HwKeccak => "hw-keccak",
        }
    }

    /// Parse a CLI label.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "ref" => Ok(BackendKind::Ref),
            "ct" => Ok(BackendKind::Ct),
            "hw" => Ok(BackendKind::Hw),
            "hw-keccak" => Ok(BackendKind::HwKeccak),
            other => Err(format!(
                "unknown backend '{other}' (expected ref|ct|hw|hw-keccak)"
            )),
        }
    }

    /// One-byte wire code (1-based; 0 is reserved/invalid).
    pub fn code(self) -> u8 {
        match self {
            BackendKind::Ref => 1,
            BackendKind::Ct => 2,
            BackendKind::Hw => 3,
            BackendKind::HwKeccak => 4,
        }
    }

    /// Decode a wire code.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(BackendKind::Ref),
            2 => Some(BackendKind::Ct),
            3 => Some(BackendKind::Hw),
            4 => Some(BackendKind::HwKeccak),
            _ => None,
        }
    }

    /// Build a fresh backend instance of this kind.
    pub fn build(self) -> Box<dyn Backend> {
        match self {
            BackendKind::Ref => Box::new(SoftwareBackend::reference()),
            BackendKind::Ct => Box::new(SoftwareBackend::constant_time()),
            BackendKind::Hw => Box::new(AcceleratedBackend::new()),
            BackendKind::HwKeccak => Box::new(KeccakAcceleratedBackend::new()),
        }
    }
}

/// One-byte wire code for a parameter set (1-based; 0 is reserved).
pub fn params_code(params: &Params) -> u8 {
    match params.n() {
        512 => 1,
        // Both level-III and level-V use n = 1024; they differ in D2.
        1024 if params.d2() => 3,
        1024 => 2,
        _ => 0,
    }
}

/// Decode a parameter-set wire code.
pub fn params_from_code(code: u8) -> Option<Params> {
    match code {
        1 => Some(Params::lac128()),
        2 => Some(Params::lac192()),
        3 => Some(Params::lac256()),
        _ => None,
    }
}

/// Parse a CLI parameter-set label.
pub fn params_parse(name: &str) -> Result<Params, String> {
    match name {
        "lac128" => Ok(Params::lac128()),
        "lac192" => Ok(Params::lac192()),
        "lac256" => Ok(Params::lac256()),
        other => Err(format!(
            "unknown parameter set '{other}' (expected lac128|lac192|lac256)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_codes_roundtrip() {
        for p in Params::ALL {
            let code = params_code(&p);
            assert!(code != 0, "{}", p.name());
            let back = params_from_code(code).unwrap();
            assert_eq!(back.name(), p.name());
            assert!(params_parse(&p.name().to_lowercase().replace('-', "")).is_ok());
        }
        assert!(params_from_code(0).is_none());
        assert!(params_from_code(9).is_none());
    }

    #[test]
    fn backend_codes_and_labels_roundtrip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::from_code(kind.code()), Some(kind));
            assert_eq!(BackendKind::parse(kind.name()), Ok(kind));
        }
        assert!(BackendKind::from_code(0).is_none());
        assert!(BackendKind::parse("fpga").is_err());
    }

    #[test]
    fn ops_index_and_parse() {
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert_eq!(Op::parse(op.label()), Ok(*op));
        }
        assert!(Op::parse("encrypt").is_err());
    }

    #[test]
    fn backend_build_produces_distinct_labels() {
        let labels: Vec<&str> = BackendKind::ALL.iter().map(|k| k.build().label()).collect();
        assert_eq!(labels, vec!["ref.", "const. BCH", "opt.", "opt. + Keccak"]);
    }
}
