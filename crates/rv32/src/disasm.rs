//! A disassembler matching the assembler's syntax.
//!
//! [`disassemble`] renders a decoded [`Inst`] in the same syntax
//! [`crate::asm::assemble`] accepts, so `assemble ∘ disassemble ∘ decode`
//! is the identity on encodable instructions — handy for debugging
//! simulator traces and asserted by round-trip tests.

use crate::inst::{AluOp, BranchOp, CsrOp, Inst, LoadOp, PqUnit, StoreOp};

/// ABI name of register `x<i>`.
pub fn reg_name(i: u8) -> &'static str {
    const NAMES: [&str; 32] = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
        "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
        "t5", "t6",
    ];
    NAMES[i as usize]
}

fn alu_name(op: AluOp, imm: bool) -> &'static str {
    match (op, imm) {
        (AluOp::Add, false) => "add",
        (AluOp::Add, true) => "addi",
        (AluOp::Sub, _) => "sub",
        (AluOp::Sll, false) => "sll",
        (AluOp::Sll, true) => "slli",
        (AluOp::Slt, false) => "slt",
        (AluOp::Slt, true) => "slti",
        (AluOp::Sltu, false) => "sltu",
        (AluOp::Sltu, true) => "sltiu",
        (AluOp::Xor, false) => "xor",
        (AluOp::Xor, true) => "xori",
        (AluOp::Srl, false) => "srl",
        (AluOp::Srl, true) => "srli",
        (AluOp::Sra, false) => "sra",
        (AluOp::Sra, true) => "srai",
        (AluOp::Or, false) => "or",
        (AluOp::Or, true) => "ori",
        (AluOp::And, false) => "and",
        (AluOp::And, true) => "andi",
        (AluOp::Mul, _) => "mul",
        (AluOp::Mulh, _) => "mulh",
        (AluOp::Mulhsu, _) => "mulhsu",
        (AluOp::Mulhu, _) => "mulhu",
        (AluOp::Div, _) => "div",
        (AluOp::Divu, _) => "divu",
        (AluOp::Rem, _) => "rem",
        (AluOp::Remu, _) => "remu",
    }
}

/// Render one instruction in assembler syntax. Branch and jump targets are
/// shown as numeric byte offsets relative to the instruction.
pub fn disassemble(inst: Inst) -> String {
    let r = reg_name;
    match inst {
        Inst::Lui { rd, imm } => format!("lui {}, {}", r(rd), imm >> 12),
        Inst::Auipc { rd, imm } => format!("auipc {}, {}", r(rd), imm >> 12),
        Inst::Jal { rd, offset } => format!("jal {}, {}", r(rd), offset),
        Inst::Jalr { rd, rs1, offset } => {
            format!("jalr {}, {}, {}", r(rd), r(rs1), offset)
        }
        Inst::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let name = match op {
                BranchOp::Eq => "beq",
                BranchOp::Ne => "bne",
                BranchOp::Lt => "blt",
                BranchOp::Ge => "bge",
                BranchOp::Ltu => "bltu",
                BranchOp::Geu => "bgeu",
            };
            format!("{name} {}, {}, {}", r(rs1), r(rs2), offset)
        }
        Inst::Load {
            op,
            rd,
            rs1,
            offset,
        } => {
            let name = match op {
                LoadOp::Byte => "lb",
                LoadOp::Half => "lh",
                LoadOp::Word => "lw",
                LoadOp::ByteU => "lbu",
                LoadOp::HalfU => "lhu",
            };
            format!("{name} {}, {}({})", r(rd), offset, r(rs1))
        }
        Inst::Store {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let name = match op {
                StoreOp::Byte => "sb",
                StoreOp::Half => "sh",
                StoreOp::Word => "sw",
            };
            format!("{name} {}, {}({})", r(rs2), offset, r(rs1))
        }
        Inst::OpImm { op, rd, rs1, imm } => {
            format!("{} {}, {}, {}", alu_name(op, true), r(rd), r(rs1), imm)
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            format!("{} {}, {}, {}", alu_name(op, false), r(rd), r(rs1), r(rs2))
        }
        Inst::Csr { op, rd, rs1, csr } => {
            let name = match op {
                CsrOp::Rw => "csrrw",
                CsrOp::Rs => "csrrs",
                CsrOp::Rc => "csrrc",
            };
            let csr_name = match csr {
                0xc00 => "cycle".to_string(),
                0xc80 => "cycleh".to_string(),
                0xc02 => "instret".to_string(),
                0xc82 => "instreth".to_string(),
                0x340 => "mscratch".to_string(),
                other => format!("{other:#x}"),
            };
            format!("{name} {}, {csr_name}, {}", r(rd), r(rs1))
        }
        Inst::Fence => "fence".into(),
        Inst::Ecall => "ecall".into(),
        Inst::Ebreak => "ebreak".into(),
        Inst::Pq { unit, rd, rs1, rs2 } => {
            let name = match unit {
                PqUnit::MulTer => "pq.mul_ter",
                PqUnit::MulChien => "pq.mul_chien",
                PqUnit::Sha256 => "pq.sha256",
                PqUnit::ModQ => "pq.modq",
            };
            format!("{name} {}, {}, {}", r(rd), r(rs1), r(rs2))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::inst::decode;

    /// assemble → decode → disassemble → assemble must reproduce the word.
    fn roundtrip(src: &str) {
        let words = assemble(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        for &w in &words {
            let inst = decode(w).unwrap_or_else(|e| panic!("{src}: {e}"));
            let text = disassemble(inst);
            let again = assemble(&text).unwrap_or_else(|e| panic!("'{text}': {e}"));
            assert_eq!(again, vec![w], "{src} → '{text}'");
        }
    }

    #[test]
    fn roundtrips_r_and_i_types() {
        for src in [
            "add a0, a1, a2",
            "sub t0, t1, t2",
            "xor s2, s3, s4",
            "sll t3, t4, t5",
            "mul a0, a1, a2",
            "divu s10, s11, t6",
            "addi a0, a0, -2048",
            "andi t0, t1, 255",
            "slli a0, a1, 31",
            "srai a2, a3, 1",
            "sltiu a4, a5, 1",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn roundtrips_memory_ops() {
        for src in [
            "lw a0, 0(sp)",
            "lb t0, -1(a0)",
            "lhu s1, 2046(gp)",
            "sw ra, 4(sp)",
            "sb a7, -128(t6)",
            "sh zero, 0(a0)",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn roundtrips_control_flow() {
        for src in [
            "jal ra, 2048",
            "jal zero, -4",
            "jalr ra, t0, 12",
            "beq a0, a1, 16",
            "bgeu t0, t1, -64",
            "ecall",
            "ebreak",
            "fence",
            "lui a0, 493",
            "auipc t0, -1",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn roundtrips_pq_instructions() {
        for src in [
            "pq.mul_ter a0, a1, a2",
            "pq.mul_chien t0, t1, t2",
            "pq.sha256 zero, a0, a1",
            "pq.modq a0, a0, zero",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn roundtrips_csr_instructions() {
        for src in [
            "csrrs a0, cycle, zero",
            "csrrw zero, mscratch, t0",
            "csrrc t1, instret, t2",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn register_names_are_canonical() {
        assert_eq!(reg_name(0), "zero");
        assert_eq!(reg_name(2), "sp");
        assert_eq!(reg_name(10), "a0");
        assert_eq!(reg_name(31), "t6");
    }

    #[test]
    fn disassembles_readably() {
        let words = assemble("addi a0, zero, 42").unwrap();
        let text = disassemble(decode(words[0]).unwrap());
        assert_eq!(text, "addi a0, zero, 42");
    }
}
