//! The PQ-ALU device: register-level state machines behind the four
//! `pq.*` instructions.
//!
//! The paper (Section V) specifies the R-type format, the opcode (0x77),
//! the funct3 unit select, and the packing granularity (five
//! coefficient pairs per `pq.mul_ter` write, four field elements per
//! `pq.mul_chien` write, one byte per `pq.sha256` transfer); the exact bit
//! positions of the control fields are not printed, so this module pins
//! down a concrete encoding consistent with those constraints:
//!
//! **pq.mul_ter** — control in rs2\[31:28\]:
//! * `1` RESET — clear input/output pointers;
//! * `2` LOAD — rs1 = four general coefficients (bytes, little-endian),
//!   rs2\[7:0\] = fifth general coefficient, rs2\[17:8\] = five 2-bit ternary
//!   coefficients (`00`=0, `01`=+1, `10`=−1); five pairs per instruction;
//! * `3` START — rs2\[0\] = `conv_n` (1 = negative wrapped convolution);
//!   stalls for the unit's n + 2 compute cycles;
//! * `4` READ — rd = next four result coefficients, pointer auto-advances.
//!
//! **pq.mul_chien** — control in rs2\[31:28\]:
//! * `1` LOAD_CONST — rs1\[8:0\], rs1\[24:16\] = α constants for one
//!   multiplier pair; rs2\[0\] selects the left (0) or right (1) pair;
//! * `2` LOAD_VAL — same layout, loads the λ terms into the feedback
//!   registers;
//! * `3` COMPUTE — every multiplier multiplies its constant into its
//!   feedback register (the Fig. 4 loop); rd = XOR of the four products;
//!   stalls 9 cycles.
//!
//! **pq.sha256** — control in rs2\[31:28\]:
//! * `1` RESET; `2` WRITE (rs1\[7:0\] appended); `3` FINALIZE (stalls 66
//!   cycles per padded block); `4` READ (rd = digest byte rs2\[5:0\]).
//!
//! **pq.modq** — rd = rs1 mod 251, single-cycle Barrett datapath.

use lac_hw::MulGf;
use lac_meter::NullMeter;
use lac_ring::mul::mul_ternary;
use lac_ring::{barrett_reduce, Convolution, Poly, TernaryPoly};
use lac_sha256::sha256;

/// Polynomial length of the MUL TER unit instance (the paper's choice).
pub const MUL_TER_LEN: usize = 512;

/// Control-field values shared by the stateful units.
pub mod ctrl {
    /// Clear pointers / state.
    pub const RESET: u32 = 1;
    /// Write input data.
    pub const LOAD: u32 = 2;
    /// Start computation (MUL TER) / compute+return (MUL CHIEN) /
    /// finalize (SHA256).
    pub const START: u32 = 3;
    /// Read output data.
    pub const READ: u32 = 4;
}

/// Decode a 2-bit ternary crumb.
fn crumb_to_ternary(c: u32) -> i8 {
    match c & 0x3 {
        0b01 => 1,
        0b10 => -1,
        _ => 0,
    }
}

/// The PQ-ALU device state (one instance per CPU). `Clone` so a
/// [`crate::warm::WarmImage`] can capture the device mid-operation.
#[derive(Debug, Clone)]
pub struct PqAlu {
    // MUL TER
    ter_a: Vec<i8>,
    ter_b: Vec<u8>,
    ter_out: Vec<u8>,
    ter_read_ptr: usize,
    // MUL CHIEN
    chien_consts: [u16; 4],
    chien_vals: [u16; 4],
    chien_muls: [MulGf; 4],
    // SHA256
    sha_buf: Vec<u8>,
    sha_digest: [u8; 32],
    /// Counts of executed pq instructions \[mul_ter, mul_chien, sha256, modq\].
    pub issue_counts: [u64; 4],
}

impl Default for PqAlu {
    fn default() -> Self {
        Self::new()
    }
}

impl PqAlu {
    /// A freshly reset device.
    pub fn new() -> Self {
        Self {
            ter_a: Vec::new(),
            ter_b: Vec::new(),
            ter_out: vec![0u8; MUL_TER_LEN],
            ter_read_ptr: 0,
            chien_consts: [0; 4],
            chien_vals: [0; 4],
            chien_muls: Default::default(),
            sha_buf: Vec::new(),
            sha_digest: [0u8; 32],
            issue_counts: [0; 4],
        }
    }

    /// Execute one `pq.mul_ter`. Returns `(rd value, stall cycles)`.
    pub fn mul_ter(&mut self, rs1: u32, rs2: u32) -> (u32, u64) {
        self.issue_counts[0] += 1;
        match rs2 >> 28 {
            ctrl::RESET => {
                self.ter_a.clear();
                self.ter_b.clear();
                self.ter_read_ptr = 0;
                (0, 0)
            }
            ctrl::LOAD => {
                // Five general coefficients: four from rs1, one from rs2[7:0].
                let mut generals = [0u8; 5];
                generals[..4].copy_from_slice(&rs1.to_le_bytes());
                generals[4] = (rs2 & 0xff) as u8;
                for (i, &g) in generals.iter().enumerate() {
                    if self.ter_b.len() < MUL_TER_LEN {
                        self.ter_b.push(g % 251);
                        self.ter_a.push(crumb_to_ternary(rs2 >> (8 + 2 * i as u32)));
                    }
                }
                (0, 0)
            }
            ctrl::START => {
                let conv = if rs2 & 1 == 1 {
                    Convolution::Negacyclic
                } else {
                    Convolution::Cyclic
                };
                let mut a = self.ter_a.clone();
                let mut b = self.ter_b.clone();
                a.resize(MUL_TER_LEN, 0);
                b.resize(MUL_TER_LEN, 0);
                let product = mul_ternary(
                    &TernaryPoly::from_coeffs(a),
                    &Poly::from_coeffs(b),
                    conv,
                    &mut NullMeter,
                );
                self.ter_out.copy_from_slice(product.coeffs());
                self.ter_read_ptr = 0;
                (0, MUL_TER_LEN as u64 + 2)
            }
            ctrl::READ => {
                let mut out = [0u8; 4];
                for slot in out.iter_mut() {
                    *slot = self.ter_out.get(self.ter_read_ptr).copied().unwrap_or(0);
                    self.ter_read_ptr += 1;
                }
                (u32::from_le_bytes(out), 0)
            }
            _ => (0, 0),
        }
    }

    /// Execute one `pq.mul_chien`. Returns `(rd value, stall cycles)`.
    pub fn mul_chien(&mut self, rs1: u32, rs2: u32) -> (u32, u64) {
        self.issue_counts[1] += 1;
        let pair = ((rs2 & 1) as usize) * 2;
        let lo = (rs1 & 0x1ff) as u16;
        let hi = ((rs1 >> 16) & 0x1ff) as u16;
        match rs2 >> 28 {
            ctrl::RESET => {
                self.chien_consts = [0; 4];
                self.chien_vals = [0; 4];
                (0, 0)
            }
            ctrl::LOAD => {
                self.chien_consts[pair] = lo;
                self.chien_consts[pair + 1] = hi;
                (0, 0)
            }
            // LOAD_VAL shares the START slot - 1 gap: use control 5.
            5 => {
                self.chien_vals[pair] = lo;
                self.chien_vals[pair + 1] = hi;
                (0, 0)
            }
            ctrl::START => {
                let mut acc = 0u16;
                for i in 0..4 {
                    let stepped = self.chien_muls[i].multiply(
                        self.chien_vals[i],
                        self.chien_consts[i],
                        &mut NullMeter,
                    );
                    self.chien_vals[i] = stepped;
                    acc ^= stepped;
                }
                (u32::from(acc), 9)
            }
            _ => (0, 0),
        }
    }

    /// Execute one `pq.sha256`. Returns `(rd value, stall cycles)`.
    pub fn sha256(&mut self, rs1: u32, rs2: u32) -> (u32, u64) {
        self.issue_counts[2] += 1;
        match rs2 >> 28 {
            ctrl::RESET => {
                self.sha_buf.clear();
                self.sha_digest = [0u8; 32];
                (0, 0)
            }
            ctrl::LOAD => {
                self.sha_buf.push((rs1 & 0xff) as u8);
                (0, 0)
            }
            ctrl::START => {
                self.sha_digest = sha256(&self.sha_buf);
                let blocks = (self.sha_buf.len() as u64 + 9).div_ceil(64);
                (0, blocks * 66)
            }
            ctrl::READ => {
                let idx = (rs2 & 0x3f) as usize % 32;
                (u32::from(self.sha_digest[idx]), 0)
            }
            _ => (0, 0),
        }
    }

    /// Execute one `pq.modq`. Returns `(rd value, stall cycles)`.
    pub fn modq(&mut self, rs1: u32, _rs2: u32) -> (u32, u64) {
        self.issue_counts[3] += 1;
        (u32::from(barrett_reduce(rs1)), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_gf::Field;

    #[test]
    fn modq_reduces() {
        let mut pq = PqAlu::new();
        assert_eq!(pq.modq(1000, 0).0, 1000 % 251);
        assert_eq!(pq.modq(u32::MAX, 0).0, u32::MAX % 251);
        assert_eq!(pq.issue_counts[3], 2);
    }

    #[test]
    fn sha256_protocol_matches_software() {
        let mut pq = PqAlu::new();
        pq.sha256(0, ctrl::RESET << 28);
        for &b in b"abc" {
            pq.sha256(u32::from(b), ctrl::LOAD << 28);
        }
        let (_, stall) = pq.sha256(0, ctrl::START << 28);
        assert_eq!(stall, 66); // one block
        let expect = sha256(b"abc");
        for i in 0..32u32 {
            let (byte, _) = pq.sha256(0, (ctrl::READ << 28) | i);
            assert_eq!(byte as u8, expect[i as usize], "byte {i}");
        }
    }

    #[test]
    fn mul_ter_protocol_small_product() {
        // Multiply (1 + x) · (3 + 5x) in the length-512 cyclic unit: both
        // inputs zero-padded, so the result is the plain product 3 + 8x + 5x².
        let mut pq = PqAlu::new();
        pq.mul_ter(0, ctrl::RESET << 28);
        // First LOAD: generals 3,5,0,0,0; ternary +1,+1,0,0,0.
        let rs1 = u32::from_le_bytes([3, 5, 0, 0]);
        let ternary = 0b01 | (0b01 << 2); // +1, +1
        let rs2 = (ctrl::LOAD << 28) | (ternary << 8);
        pq.mul_ter(rs1, rs2);
        let (_, stall) = pq.mul_ter(0, ctrl::START << 28); // cyclic
        assert_eq!(stall, 514);
        let (packed, _) = pq.mul_ter(0, ctrl::READ << 28);
        let bytes = packed.to_le_bytes();
        assert_eq!(bytes, [3, 8, 5, 0]);
    }

    #[test]
    fn mul_ter_negacyclic_wraps() {
        // Load a = x^511 (ternary +1 at last position), b = x: product
        // x^512 ≡ −1 mod x^512+1, i.e. coefficient 0 = 250.
        let mut pq = PqAlu::new();
        pq.mul_ter(0, ctrl::RESET << 28);
        for i in 0..103 {
            // 5 pairs per load; position 511 is the 2nd slot of load #102.
            let mut rs1 = 0u32;
            let mut rs2 = ctrl::LOAD << 28;
            if i == 102 {
                // slots 510..514; slot index 1 is position 511.
                rs2 |= 0b01 << (8 + 2);
            }
            if i == 0 {
                // b coefficient 1 at position 1.
                rs1 = u32::from_le_bytes([0, 1, 0, 0]);
            }
            pq.mul_ter(rs1, rs2);
        }
        pq.mul_ter(0, (ctrl::START << 28) | 1); // negacyclic
        let (packed, _) = pq.mul_ter(0, ctrl::READ << 28);
        assert_eq!(packed.to_le_bytes()[0], 250); // −1 mod 251
    }

    #[test]
    fn chien_steps_feedback() {
        // Load constants α¹..α⁴ and values λ₁..λ₄; two COMPUTEs must yield
        // λ_k·α^k then λ_k·α^{2k}.
        let gf = Field::gf512();
        let lambda = [17u16, 300, 5, 450];
        let mut pq = PqAlu::new();
        let pack = |a: u16, b: u16| u32::from(a) | (u32::from(b) << 16);
        pq.mul_chien(pack(gf.exp(1), gf.exp(2)), ctrl::LOAD << 28);
        pq.mul_chien(pack(gf.exp(3), gf.exp(4)), (ctrl::LOAD << 28) | 1);
        pq.mul_chien(pack(lambda[0], lambda[1]), 5 << 28);
        pq.mul_chien(pack(lambda[2], lambda[3]), (5 << 28) | 1);

        let (out1, stall) = pq.mul_chien(0, ctrl::START << 28);
        assert_eq!(stall, 9);
        let expect1 = (0..4).fold(0u16, |acc, k| acc ^ gf.mul(lambda[k], gf.exp(k as u32 + 1)));
        assert_eq!(out1 as u16, expect1);

        let (out2, _) = pq.mul_chien(0, ctrl::START << 28);
        let expect2 = (0..4).fold(0u16, |acc, k| {
            acc ^ gf.mul(lambda[k], gf.pow(gf.exp(k as u32 + 1), 2))
        });
        assert_eq!(out2 as u16, expect2);
    }

    #[test]
    fn reset_clears_chien_state() {
        let mut pq = PqAlu::new();
        pq.mul_chien(123 | (456 << 16), 5 << 28);
        pq.mul_chien(0, ctrl::RESET << 28);
        let (out, _) = pq.mul_chien(0, ctrl::START << 28);
        assert_eq!(out, 0);
    }
}
