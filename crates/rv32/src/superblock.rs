//! Superblock compilation for the trace-cached execution engine.
//!
//! The predecode cache ([`crate::predecode`]) removed per-instruction
//! decode cost; what remains on its dispatch loop is per-instruction
//! *bookkeeping* — fuel check, counter updates, PC update, slot load —
//! paid once per retired instruction. The superblock engine removes most
//! of that too: it discovers straight-line regions ("superblocks"), each
//! ending at a control-flow or system boundary (branch, jump, CSR,
//! `ecall`, `ebreak`), compiles the region once into a flat vector of
//! [`BlockOp`]s with pre-resolved register indices, pre-folded immediates
//! and pre-summed modelled-cycle prefixes, and then executes whole blocks
//! from a PC-indexed trace cache. Fuel, cycle and instruction accounting
//! happen once per *block* on the happy path.
//!
//! Macro-op fusion folds common idioms into single ops:
//!
//! * `lui` + dependent `addi` → one constant materialisation,
//! * `auipc` + dependent load → one load from a precomputed address,
//! * load + dependent ALU op → one load-use pair,
//! * ALU op + dependent conditional branch → one compare-and-branch
//!   terminator.
//!
//! **Exactness.** The engine must be architecturally indistinguishable
//! from the decode-every-step oracle — same registers, memory, traps,
//! modelled cycles, retired-instruction counts and PQ-ALU stalls:
//!
//! * Every op records the PC of its first instruction and the prefix
//!   cycle/instruction totals of the ops before it, so a trap mid-block
//!   reconstructs the oracle's counter values and faulting PC exactly
//!   (the oracle charges a faulting instruction its base cycle but not
//!   its load-use stall; fused pairs charge the completed first half).
//! * Only statically-costed instructions enter block bodies. PQ-ALU ops
//!   stay in the body but accumulate their device-reported stalls in a
//!   dynamic side counter that trap paths fold in, so stall accounting
//!   is bit-identical. CSR reads (which observe live counters) terminate
//!   blocks and execute on the shared `execute` core.
//! * Blocks record the predecode-line generations
//!   ([`crate::predecode::PredecodeCache::line_gen`]) of every line their
//!   instructions start in. A store that could rewrite any of those bytes
//!   bumps the generation (the predecode invalidation window already
//!   reaches 3 bytes back for straddling encodings), so a stale block is
//!   detected both at dispatch and *immediately after every store it
//!   executes* — self-modifying code, including a store into the
//!   currently-running block, behaves exactly as on the oracle.
//!
//! Compilation is driven by a hotness counter: a block head (entry PC
//! after a boundary) is interpreted until it has been seen
//! [`HOT_THRESHOLD`] times, then compiled and cached in a direct-mapped
//! [`SuperblockCache`]. The execution side lives in [`crate::cpu::Cpu`]
//! (`run` with [`crate::cpu::Engine::Superblock`], the default).

use crate::inst::{AluOp, BranchOp, Inst, LoadOp, PqUnit, StoreOp};
use crate::predecode::{PredecodeCache, Slot, LINE_BYTES};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Head executions before a block is compiled (the first probe counts).
/// Small enough that short-running differential tests still exercise the
/// compiled path; large enough that straight-line cold code is never
/// compiled.
pub const HOT_THRESHOLD: u32 = 4;

/// Maximum raw instructions collected into one block (body + terminator).
/// Bounds compile cost and the per-block fuel requirement; also the cap
/// on the interpreted stretch between head probes.
pub const MAX_OPS: usize = 64;

/// Default trace-cache slot count (direct-mapped, power of two); override
/// with the `LAC_SB_SLOTS` environment variable (see [`resolve_slots`]).
pub const DEFAULT_SLOTS: usize = 4096;

/// Resolve a `LAC_SB_SLOTS`-style capacity override. Parsed values are
/// clamped to `[16, 1 << 20]` and rounded up to a power of two (the
/// direct-mapped index is a mask); anything absent or unparsable falls
/// back to [`DEFAULT_SLOTS`]. Capacity only moves the hot/conflict
/// trade-off — it is never architecturally visible.
pub fn resolve_slots(value: Option<&str>) -> usize {
    match value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) => n.clamp(16, 1 << 20).next_power_of_two(),
        None => DEFAULT_SLOTS,
    }
}

fn slots_from_env() -> usize {
    resolve_slots(std::env::var("LAC_SB_SLOTS").ok().as_deref())
}

/// Distinct predecode lines a maximal block can start instructions in:
/// `MAX_OPS` 4-byte instructions from an arbitrary even offset span at
/// most three 256-byte lines (one spare for safety).
pub(crate) const MAX_LINES: usize = 4;

pub(crate) const LINE_SHIFT: u32 = LINE_BYTES.trailing_zeros();

/// Second ALU operand of a fused op: folded immediate or register index.
#[derive(Debug, Clone, Copy)]
pub enum Src2 {
    /// Immediate (already sign-extended to 32 bits).
    Imm(u32),
    /// Register index.
    Reg(u8),
}

/// The operation kinds a block body is compiled into. Register indices
/// are pre-resolved `u8`s, immediates pre-extended, fused constants
/// pre-folded. Static modelled cost lives in the enclosing [`BlockOp`]'s
/// prefix sums; only PQ stalls are dynamic (accumulated at execution).
#[derive(Debug, Clone, Copy)]
pub enum OpKind {
    /// `lui`, or a fused `lui`+`addi` pair: `rd = value`.
    LoadImm {
        /// Destination register.
        rd: u8,
        /// Folded constant.
        value: u32,
    },
    /// `auipc` with the PC already added in.
    Auipc {
        /// Destination register.
        rd: u8,
        /// `pc + imm`, precomputed.
        value: u32,
    },
    /// Register-immediate ALU op.
    OpImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: u8,
        /// Source register.
        rs1: u8,
        /// Sign-extended immediate.
        imm: u32,
    },
    /// Register-register ALU op.
    Op {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: u8,
        /// First source register.
        rs1: u8,
        /// Second source register.
        rs2: u8,
    },
    /// Memory load.
    Load {
        /// Width/extension.
        op: LoadOp,
        /// Destination register.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Sign-extended offset.
        offset: u32,
    },
    /// Fused `auipc` + load through the `auipc` result: the absolute load
    /// address is precomputed at compile time.
    AuipcLoad {
        /// Load width/extension.
        op: LoadOp,
        /// The `auipc` destination (written even if the load faults).
        rd: u8,
        /// The load destination.
        lrd: u8,
        /// Precomputed absolute address (`pc + imm + offset`).
        addr: u32,
        /// The `auipc` result (`pc + imm`).
        value: u32,
        /// PC of the load (the faulting PC if the access traps).
        pc2: u32,
    },
    /// Fused load + dependent ALU op (classic load-use pair).
    LoadUse {
        /// Load width/extension.
        lop: LoadOp,
        /// Load destination register.
        lrd: u8,
        /// Load base register.
        lrs1: u8,
        /// Load offset (sign-extended).
        loffset: u32,
        /// Dependent ALU operation.
        aop: AluOp,
        /// ALU destination register.
        ard: u8,
        /// ALU first source register.
        ars1: u8,
        /// ALU second operand.
        asrc: Src2,
    },
    /// Memory store. Executes the predecode invalidation like any store;
    /// the engine re-validates the block's line generations right after,
    /// so a store into the running block bails out exactly.
    Store {
        /// Width.
        op: StoreOp,
        /// Base register.
        rs1: u8,
        /// Value register.
        rs2: u8,
        /// Sign-extended offset.
        offset: u32,
    },
    /// `fence` (a modelled no-op costing one cycle).
    Fence,
    /// PQ-ALU custom instruction: one static cycle plus a dynamic,
    /// device-reported stall accumulated at execution time.
    Pq {
        /// Functional unit.
        unit: PqUnit,
        /// Destination register.
        rd: u8,
        /// First source register.
        rs1: u8,
        /// Second source register.
        rs2: u8,
    },
}

/// One compiled body operation plus the prefix totals of everything
/// before it (used only on trap/bail paths; the happy path charges the
/// block totals once).
#[derive(Debug, Clone, Copy)]
pub struct BlockOp {
    /// PC of the op's first instruction.
    pub pc: u32,
    /// Static modelled cycles of body ops before this one.
    pub cycles_before: u32,
    /// Instructions retired by body ops before this one.
    pub instrs_before: u32,
    /// The operation.
    pub kind: OpKind,
}

/// How a block ends.
#[derive(Debug, Clone, Copy)]
pub enum Terminator {
    /// Any boundary instruction (branch, jump, CSR, `ecall`, `ebreak`),
    /// executed on the shared `Cpu::execute` core so taken-branch
    /// penalties, live CSR counter reads and trap values are exact by
    /// construction.
    Plain {
        /// Decoded instruction.
        inst: Inst,
        /// Raw (decompressed) word, for trap values.
        word: u32,
        /// Encoded length in bytes.
        len: u8,
    },
    /// Fused ALU op + dependent conditional branch.
    CmpBranch {
        /// ALU operation.
        aop: AluOp,
        /// ALU destination register.
        ard: u8,
        /// ALU first source register.
        ars1: u8,
        /// ALU second operand.
        asrc: Src2,
        /// Branch comparison.
        bop: BranchOp,
        /// Branch first source register.
        brs1: u8,
        /// Branch second source register.
        brs2: u8,
        /// Branch target when taken.
        taken_pc: u32,
        /// Fall-through PC.
        fall_pc: u32,
    },
    /// The block ended at [`MAX_OPS`] or just before a slot that does not
    /// hold a decodable instruction; execution resumes at `term_pc`.
    FallThrough,
}

/// A compiled superblock: pure translated code, free of any per-`Cpu`
/// validity metadata, so one `Arc<Block>` can be shared across CPUs
/// through a [`SharedTraceCache`]. The store-sensitivity metadata — which
/// predecode-line generations the installing CPU observed — lives in the
/// per-`Cpu` [`CachedBlock`] wrapper.
#[derive(Debug)]
pub struct Block {
    /// Anchor PC the block was compiled at — its dispatch head. Kept
    /// explicitly because fusion can absorb every body op into the
    /// terminator (e.g. a two-instruction `addi`+`bne` loop), leaving no
    /// op to recover the head from; the JIT bakes it into chain-link
    /// requests.
    pub head_pc: u32,
    /// Straight-line body.
    pub ops: Box<[BlockOp]>,
    /// Ending operation.
    pub term: Terminator,
    /// PC of the terminator (or the resume PC for
    /// [`Terminator::FallThrough`]).
    pub term_pc: u32,
    /// First PC past the last byte the block was compiled from (the end
    /// of the terminator's encoding, or the resume PC for
    /// [`Terminator::FallThrough`]). `[head, end_pc)` is exactly the
    /// code-byte span the compiled ops are a pure function of — the span
    /// a [`SharedTraceCache`] byte-validates on install.
    pub end_pc: u32,
    /// Total static body cycles (happy path adds once).
    pub body_cycles: u32,
    /// Total body instructions (happy path adds once).
    pub body_instrs: u32,
    /// Instructions retired by a full pass including the terminator —
    /// the fuel a dispatch requires.
    pub total_instrs: u64,
}

/// A block installed in one `Cpu`'s trace cache: the (possibly shared)
/// compiled code plus this CPU's `(line, generation)` validity pairs.
/// Any store that could rewrite the block's code bytes bumps one of the
/// generations, marking the entry stale; the engine checks at dispatch
/// and immediately after every store the block executes.
#[derive(Debug)]
pub struct CachedBlock {
    /// The compiled code (shareable across CPUs).
    pub block: Arc<Block>,
    /// `(line, generation)` pairs covering every byte of the block's code
    /// span, recorded against the installing CPU's predecode cache.
    lines: [(u32, u64); MAX_LINES],
    line_count: u8,
    /// Host code emitted for `block` by the JIT tier, if any. Rides along
    /// through clones (so warm snapshots keep their translations) but is
    /// only consulted when the CPU runs [`crate::cpu::Engine::Jit`].
    jit: Option<Arc<crate::jit::JitCode>>,
    /// This CPU's chain node for the block (successor link slots). Never
    /// cloned: link targets are process-local host addresses registered
    /// with one CPU's [`crate::jit::ChainRegistry`], so a snapshot or
    /// warm-image clone starts unlinked and re-links on its own CPU.
    chain: Option<Arc<crate::jit::ChainNode>>,
}

impl Clone for CachedBlock {
    fn clone(&self) -> Self {
        Self {
            block: Arc::clone(&self.block),
            lines: self.lines,
            line_count: self.line_count,
            jit: self.jit.clone(),
            chain: None,
        }
    }
}

impl CachedBlock {
    /// Wrap `block` with the `(line, generation)` pairs the installing
    /// CPU observed.
    pub(crate) fn from_lines(block: Arc<Block>, lines: &[(u32, u64)]) -> Self {
        assert!(
            lines.len() <= MAX_LINES,
            "block spans more lines than MAX_LINES"
        );
        let mut arr = [(0u32, 0u64); MAX_LINES];
        arr[..lines.len()].copy_from_slice(lines);
        Self {
            block,
            lines: arr,
            line_count: lines.len() as u8,
            jit: None,
            chain: None,
        }
    }

    /// Whether every predecode line this entry was validated against still
    /// has the generation observed at install time.
    #[inline]
    pub fn lines_current(&self, cache: &PredecodeCache) -> bool {
        self.lines[..usize::from(self.line_count)]
            .iter()
            .all(|&(line, gen)| cache.line_gen(line as usize) == gen)
    }

    /// The entry's `(line, generation)` validity pairs (handed to emitted
    /// code so post-store re-validation sees exactly what dispatch saw).
    #[inline]
    pub(crate) fn lines(&self) -> &[(u32, u64)] {
        &self.lines[..usize::from(self.line_count)]
    }

    /// The host code emitted for this block, if any.
    #[inline]
    pub(crate) fn jit_code(&self) -> Option<&Arc<crate::jit::JitCode>> {
        self.jit.as_ref()
    }

    /// Attach emitted host code to this entry.
    #[inline]
    pub(crate) fn set_jit(&mut self, code: Arc<crate::jit::JitCode>) {
        self.jit = Some(code);
    }

    /// This CPU's chain node for the block, if one was created.
    #[inline]
    pub(crate) fn chain_node(&self) -> Option<&Arc<crate::jit::ChainNode>> {
        self.chain.as_ref()
    }

    /// Attach this CPU's chain node.
    #[inline]
    pub(crate) fn set_chain(&mut self, node: Arc<crate::jit::ChainNode>) {
        self.chain = Some(node);
    }
}

/// Lifetime counters of the superblock engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperblockStats {
    /// Blocks compiled (including recompiles of stale heads).
    pub compiles: u64,
    /// Whole-block executions dispatched from the trace cache.
    pub dispatches: u64,
    /// Blocks dropped at dispatch because a line generation moved.
    pub stale_drops: u64,
    /// Mid-block bail-outs after a store invalidated the running block.
    pub store_bails: u64,
    /// Blocks adopted from a [`SharedTraceCache`] instead of compiled
    /// locally.
    pub shared_installs: u64,
    /// Locally-compiled blocks newly published to a [`SharedTraceCache`].
    pub shared_publishes: u64,
}

/// One direct-mapped trace-cache entry.
#[derive(Debug)]
pub struct BlockSlot {
    /// Head PC this entry tracks (`u32::MAX` = empty; heads are even).
    pub tag: u32,
    /// Times the head was probed without a cached block.
    pub heat: u32,
    /// The compiled block, once hot. Boxed so the dispatch loop's
    /// take/put-back is one pointer move, not a by-value copy of the
    /// entry (measurably hot: one take+put per block dispatch).
    pub block: Option<Box<CachedBlock>>,
}

/// One snapshotted trace-cache slot (see [`crate::warm::WarmImage`]).
#[derive(Debug, Clone)]
pub(crate) struct SlotImage {
    pub(crate) index: u32,
    pub(crate) tag: u32,
    pub(crate) heat: u32,
    pub(crate) block: Option<CachedBlock>,
}

/// The PC-indexed trace cache plus engine counters.
#[derive(Debug)]
pub struct SuperblockCache {
    slots: Vec<BlockSlot>,
    mask: usize,
    /// Engine lifetime counters.
    pub stats: SuperblockStats,
}

impl SuperblockCache {
    /// An empty trace cache sized by `LAC_SB_SLOTS` (default
    /// [`DEFAULT_SLOTS`]).
    pub fn new() -> Self {
        Self::with_slots(slots_from_env())
    }

    /// An empty trace cache with an explicit capacity (clamped and rounded
    /// as by [`resolve_slots`]).
    pub fn with_slots(slots: usize) -> Self {
        let count = slots.clamp(16, 1 << 20).next_power_of_two();
        let mut slots = Vec::with_capacity(count);
        for _ in 0..count {
            slots.push(BlockSlot {
                tag: u32::MAX,
                heat: 0,
                block: None,
            });
        }
        Self {
            slots,
            mask: count - 1,
            stats: SuperblockStats::default(),
        }
    }

    /// The direct-mapped capacity of this cache.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Direct-mapped slot index for head `pc` (even).
    #[inline]
    pub fn index(&self, pc: u32) -> usize {
        (pc >> 1) as usize & self.mask
    }

    /// The slot at `index`.
    #[inline]
    pub fn slot_mut(&mut self, index: usize) -> &mut BlockSlot {
        &mut self.slots[index]
    }

    /// Clear every slot back to empty (tags, heat and blocks).
    pub(crate) fn reset(&mut self) {
        for slot in &mut self.slots {
            slot.tag = u32::MAX;
            slot.heat = 0;
            slot.block = None;
        }
    }

    /// Sparse snapshot of the occupied slots (blocks are `Arc`-shared, so
    /// this copies metadata, not compiled code).
    pub(crate) fn snapshot_slots(&self) -> Vec<SlotImage> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.tag != u32::MAX)
            .map(|(index, slot)| SlotImage {
                index: index as u32,
                tag: slot.tag,
                heat: slot.heat,
                block: slot.block.as_deref().cloned(),
            })
            .collect()
    }

    /// Restore a snapshot taken by [`SuperblockCache::snapshot_slots`],
    /// rebuilding the slot table if the capacity differs.
    pub(crate) fn restore_slots(
        &mut self,
        slot_count: usize,
        images: &[SlotImage],
        stats: SuperblockStats,
    ) {
        if self.slots.len() != slot_count {
            *self = Self::with_slots(slot_count);
        } else {
            self.reset();
        }
        for image in images {
            self.slots[image.index as usize] = BlockSlot {
                tag: image.tag,
                heat: image.heat,
                block: image.block.clone().map(Box::new),
            };
        }
        self.stats = stats;
    }
}

/// Distinct code versions remembered per head PC in a
/// [`SharedTraceCache`] (self-modifying heads cycle through versions; an
/// unbounded list would leak under adversarial rewriting).
const SHARED_VERSIONS_PER_HEAD: usize = 4;

#[derive(Debug)]
struct SharedEntry {
    /// The exact code bytes (`[head, end_pc)`) the block was compiled
    /// from, captured from the publishing CPU's RAM.
    code: Box<[u8]>,
    block: Arc<Block>,
}

/// Point-in-time counters of a [`SharedTraceCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedTraceStats {
    /// Lookups that found a byte-identical block to install.
    pub installs: u64,
    /// Lookups that found no matching entry.
    pub misses: u64,
    /// Blocks published (distinct `(head, code)` versions stored).
    pub publishes: u64,
    /// Entries currently held.
    pub blocks: u64,
}

/// A process-wide pool of compiled superblocks, shared across CPUs behind
/// an `Arc` so the first thread to compile a hot region pays for it once.
///
/// **Exactness.** A shared entry records the exact code bytes its block
/// was compiled from. Installing into another CPU byte-compares that span
/// against the installer's RAM — decode is a pure function of those
/// bytes, so equality re-derives the identical block — and then records
/// the installer's *own* predecode `(line, generation)` pairs in the
/// per-CPU [`CachedBlock`], so dispatch-time and post-store generation
/// validation work exactly as for locally-compiled blocks. Self-modifying
/// code therefore stays bit-identical: a stale shared block either fails
/// the byte compare at install or trips the generation check afterwards.
#[derive(Debug, Default)]
pub struct SharedTraceCache {
    map: Mutex<HashMap<u32, Vec<SharedEntry>>>,
    installs: AtomicU64,
    misses: AtomicU64,
    publishes: AtomicU64,
    /// Emitted host code keyed by `Arc<Block>` identity, so fleet workers
    /// adopting a shared block also adopt its translation (zero local JIT
    /// compiles on warm workers).
    jit: crate::jit::SharedJitPool,
}

impl SharedTraceCache {
    /// An empty shared cache (wrap in an `Arc` to attach to CPUs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> SharedTraceStats {
        let blocks = self
            .map
            .lock()
            .expect("shared trace cache poisoned")
            .values()
            .map(|v| v.len() as u64)
            .sum();
        SharedTraceStats {
            installs: self.installs.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            blocks,
        }
    }

    /// Find a published block for head `pc` whose recorded code bytes
    /// equal `ram` at that address (see the type docs for why byte
    /// equality is sufficient).
    pub(crate) fn lookup(&self, pc: u32, ram: &[u8]) -> Option<Arc<Block>> {
        let map = self.map.lock().expect("shared trace cache poisoned");
        if let Some(entries) = map.get(&pc) {
            for entry in entries {
                let span = ram.get(pc as usize..pc as usize + entry.code.len());
                if span == Some(&entry.code[..]) {
                    self.installs.fetch_add(1, Ordering::Relaxed);
                    return Some(Arc::clone(&entry.block));
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Publish a locally-compiled block and the code bytes it depends on.
    /// Returns `true` if stored (`false` when an identical version is
    /// already present).
    pub(crate) fn publish(&self, pc: u32, code: &[u8], block: &Arc<Block>) -> bool {
        let mut map = self.map.lock().expect("shared trace cache poisoned");
        let entries = map.entry(pc).or_default();
        if entries.iter().any(|e| *e.code == *code) {
            return false;
        }
        if entries.len() >= SHARED_VERSIONS_PER_HEAD {
            entries.remove(0); // oldest version first
        }
        entries.push(SharedEntry {
            code: code.into(),
            block: Arc::clone(block),
        });
        self.publishes.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Adopt the pooled JIT translation for `block`, if one was published.
    pub(crate) fn jit_lookup(&self, block: &Arc<Block>) -> Option<Arc<crate::jit::JitCode>> {
        self.jit.lookup(block)
    }

    /// Publish emitted host code for `block` (keyed by `Arc` identity).
    pub(crate) fn jit_publish(&self, block: &Arc<Block>, code: &Arc<crate::jit::JitCode>) -> bool {
        self.jit.publish(block, code)
    }

    /// Point-in-time counters of the embedded JIT code pool.
    pub fn jit_stats(&self) -> crate::jit::SharedJitStats {
        self.jit.stats()
    }
}

impl Default for SuperblockCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Whether `inst` ends a superblock: control flow (whose successor PC is
/// dynamic), CSR accesses (which must observe live counters on the shared
/// execute core) and the system instructions. Everything else — including
/// PQ-ALU ops, whose stalls are accounted dynamically — can sit in a
/// block body.
#[inline]
pub fn ends_block(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Branch { .. }
            | Inst::Jal { .. }
            | Inst::Jalr { .. }
            | Inst::Csr { .. }
            | Inst::Ecall
            | Inst::Ebreak
    )
}

/// The static modelled cycles of the M-extension divider, charged
/// unconditionally by the ALU for `div`/`divu`/`rem`/`remu`.
#[inline]
fn div_cycles(op: AluOp) -> u32 {
    match op {
        AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => 34,
        _ => 0,
    }
}

/// One raw instruction collected before fusion.
struct Raw {
    pc: u32,
    inst: Inst,
    word: u32,
    len: u8,
}

/// Compile the superblock anchored at `anchor` (an even PC), predecoding
/// lines through `cache` as needed. Returns `None` when the anchor slot
/// does not hold a decodable instruction (the interpreter will raise the
/// exact trap instead). The returned [`CachedBlock`] carries the
/// compiling CPU's `(line, generation)` validity pairs.
pub fn compile(cache: &mut PredecodeCache, ram: &[u8], anchor: u32) -> Option<CachedBlock> {
    debug_assert_eq!(anchor & 1, 0, "block heads are halfword-aligned");

    // Pass 1: collect the straight-line region.
    let mut raws: Vec<Raw> = Vec::new();
    let mut term: Option<Raw> = None;
    let mut pc = anchor;
    while raws.len() < MAX_OPS {
        let slot = match cache.lookup(ram, pc) {
            Some(slot) => slot,
            None => break, // beyond RAM: fall through, the fetch will fault
        };
        match slot {
            Slot::Trap(_) => break, // raised only if the PC gets here
            Slot::Empty => unreachable!("lookup never returns Empty"),
            Slot::Inst { inst, word, len } => {
                let raw = Raw {
                    pc,
                    inst,
                    word,
                    len,
                };
                if ends_block(&inst) {
                    term = Some(raw);
                    break;
                }
                pc = pc.wrapping_add(u32::from(len));
                raws.push(raw);
            }
        }
    }
    if raws.is_empty() && term.is_none() {
        return None;
    }
    let term_pc = term.as_ref().map_or(pc, |t| t.pc);
    // First PC past the last code byte the block depends on: every
    // instruction's encoding lies inside `[anchor, end_pc)`.
    let end_pc = term
        .as_ref()
        .map_or(pc, |t| t.pc.wrapping_add(u32::from(t.len)));

    // Record the lines instructions start in, before fusion loses PCs.
    let mut lines = [(0u32, 0u64); MAX_LINES];
    let mut line_count = 0u8;
    {
        let mut note = |pc: u32| {
            let line = pc >> LINE_SHIFT;
            let seen = lines[..usize::from(line_count)]
                .iter()
                .any(|&(l, _)| l == line);
            if !seen {
                assert!(
                    usize::from(line_count) < MAX_LINES,
                    "block spans more lines than MAX_LINES"
                );
                lines[usize::from(line_count)] = (line, cache.line_gen(line as usize));
                line_count += 1;
            }
        };
        for raw in &raws {
            note(raw.pc);
        }
        if let Some(t) = &term {
            note(t.pc);
        }
    }

    // Pass 2: fuse and lay out the body with prefix cost sums.
    let mut ops: Vec<BlockOp> = Vec::with_capacity(raws.len());
    let mut cycles: u32 = 0;
    let mut instrs: u32 = 0;
    let mut i = 0;
    while i < raws.len() {
        let raw = &raws[i];
        let next = raws.get(i + 1);
        let (kind, cost_cycles, cost_instrs, consumed) = fuse(raw, next);
        ops.push(BlockOp {
            pc: raw.pc,
            cycles_before: cycles,
            instrs_before: instrs,
            kind,
        });
        cycles += cost_cycles;
        instrs += cost_instrs;
        i += consumed;
    }

    // Terminator, possibly fusing the last plain ALU op into the branch.
    let mut term_instrs: u64 = 0;
    let terminator = match term {
        None => Terminator::FallThrough,
        Some(t) => {
            term_instrs = 1;
            let fused = fuse_cmp_branch(&t, ops.last());
            match fused {
                Some(cmp) => {
                    // The ALU op moved into the terminator: un-count it.
                    let popped = ops.pop().expect("fuse_cmp_branch requires a last op");
                    let popped_cost = match popped.kind {
                        OpKind::OpImm { op, .. } | OpKind::Op { op, .. } => 1 + div_cycles(op),
                        _ => unreachable!("only plain ALU ops fuse into branches"),
                    };
                    cycles -= popped_cost;
                    instrs -= 1;
                    term_instrs = 2;
                    cmp
                }
                None => Terminator::Plain {
                    inst: t.inst,
                    word: t.word,
                    len: t.len,
                },
            }
        }
    };

    let block = Arc::new(Block {
        head_pc: anchor,
        ops: ops.into_boxed_slice(),
        term: terminator,
        term_pc,
        end_pc,
        body_cycles: cycles,
        body_instrs: instrs,
        total_instrs: u64::from(instrs) + term_instrs,
    });
    Some(CachedBlock::from_lines(
        block,
        &lines[..usize::from(line_count)],
    ))
}

/// Map one raw instruction (peeking at its successor for fusion) to an
/// [`OpKind`] plus `(static_cycles, instructions, raws_consumed)`.
fn fuse(raw: &Raw, next: Option<&Raw>) -> (OpKind, u32, u32, usize) {
    match raw.inst {
        Inst::Lui { rd, imm } => {
            // lui rd, hi ; addi rd, rd, lo  →  rd = hi + lo (folded).
            // Requires rd != x0: `lui x0` discards, so the addi would read
            // a real zero, not the immediate.
            if rd != 0 {
                if let Some(n) = next {
                    if let Inst::OpImm {
                        op: AluOp::Add,
                        rd: ard,
                        rs1,
                        imm: aimm,
                    } = n.inst
                    {
                        if rs1 == rd && ard == rd {
                            let value = (imm as u32).wrapping_add(aimm as u32);
                            return (OpKind::LoadImm { rd, value }, 2, 2, 2);
                        }
                    }
                }
            }
            (
                OpKind::LoadImm {
                    rd,
                    value: imm as u32,
                },
                1,
                1,
                1,
            )
        }
        Inst::Auipc { rd, imm } => {
            let value = raw.pc.wrapping_add(imm as u32);
            // auipc rd, hi ; load lrd, off(rd)  →  load from a constant
            // address. Same rd != x0 caveat as lui+addi.
            if rd != 0 {
                if let Some(n) = next {
                    if let Inst::Load {
                        op,
                        rd: lrd,
                        rs1,
                        offset,
                    } = n.inst
                    {
                        if rs1 == rd {
                            let kind = OpKind::AuipcLoad {
                                op,
                                rd,
                                lrd,
                                addr: value.wrapping_add(offset as u32),
                                value,
                                pc2: n.pc,
                            };
                            return (kind, 3, 2, 2); // auipc 1 + load 2
                        }
                    }
                }
            }
            (OpKind::Auipc { rd, value }, 1, 1, 1)
        }
        Inst::Load {
            op,
            rd,
            rs1,
            offset,
        } => {
            // Load + an ALU op consuming the loaded register.
            if rd != 0 {
                if let Some(n) = next {
                    match n.inst {
                        Inst::OpImm {
                            op: aop,
                            rd: ard,
                            rs1: ars1,
                            imm,
                        } if ars1 == rd => {
                            let kind = OpKind::LoadUse {
                                lop: op,
                                lrd: rd,
                                lrs1: rs1,
                                loffset: offset as u32,
                                aop,
                                ard,
                                ars1,
                                asrc: Src2::Imm(imm as u32),
                            };
                            return (kind, 3 + div_cycles(aop), 2, 2);
                        }
                        Inst::Op {
                            op: aop,
                            rd: ard,
                            rs1: ars1,
                            rs2: ars2,
                        } if ars1 == rd || ars2 == rd => {
                            let kind = OpKind::LoadUse {
                                lop: op,
                                lrd: rd,
                                lrs1: rs1,
                                loffset: offset as u32,
                                aop,
                                ard,
                                ars1,
                                asrc: Src2::Reg(ars2),
                            };
                            return (kind, 3 + div_cycles(aop), 2, 2);
                        }
                        _ => {}
                    }
                }
            }
            (
                OpKind::Load {
                    op,
                    rd,
                    rs1,
                    offset: offset as u32,
                },
                2, // 1 + load-use stall
                1,
                1,
            )
        }
        Inst::Store {
            op,
            rs1,
            rs2,
            offset,
        } => (
            OpKind::Store {
                op,
                rs1,
                rs2,
                offset: offset as u32,
            },
            1,
            1,
            1,
        ),
        Inst::OpImm { op, rd, rs1, imm } => (
            OpKind::OpImm {
                op,
                rd,
                rs1,
                imm: imm as u32,
            },
            1 + div_cycles(op),
            1,
            1,
        ),
        Inst::Op { op, rd, rs1, rs2 } => {
            (OpKind::Op { op, rd, rs1, rs2 }, 1 + div_cycles(op), 1, 1)
        }
        Inst::Fence => (OpKind::Fence, 1, 1, 1),
        Inst::Pq { unit, rd, rs1, rs2 } => {
            // 1 static cycle; the device stall is added dynamically.
            (OpKind::Pq { unit, rd, rs1, rs2 }, 1, 1, 1)
        }
        Inst::Branch { .. }
        | Inst::Jal { .. }
        | Inst::Jalr { .. }
        | Inst::Csr { .. }
        | Inst::Ecall
        | Inst::Ebreak => unreachable!("boundary instructions never enter a block body"),
    }
}

/// Try to fuse the last body op (a plain ALU op whose result the branch
/// compares) into the branch terminator.
fn fuse_cmp_branch(term: &Raw, last: Option<&BlockOp>) -> Option<Terminator> {
    let Inst::Branch {
        op: bop,
        rs1: brs1,
        rs2: brs2,
        offset,
    } = term.inst
    else {
        return None;
    };
    let last = last?;
    let (aop, ard, ars1, asrc) = match last.kind {
        OpKind::OpImm { op, rd, rs1, imm } => (op, rd, rs1, Src2::Imm(imm)),
        OpKind::Op { op, rd, rs1, rs2 } => (op, rd, rs1, Src2::Reg(rs2)),
        _ => return None,
    };
    // The idiom: the branch reads the value the ALU just produced.
    if brs1 != ard && brs2 != ard {
        return None;
    }
    Some(Terminator::CmpBranch {
        aop,
        ard,
        ars1,
        asrc,
        bop,
        brs1,
        brs2,
        taken_pc: term.pc.wrapping_add(offset as u32),
        fall_pc: term.pc.wrapping_add(u32::from(term.len)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn setup(src: &str) -> (PredecodeCache, Vec<u8>) {
        let words = assemble(src).expect("test program assembles");
        let mut ram = vec![0u8; 1 << 16];
        for (i, w) in words.iter().enumerate() {
            ram[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        (PredecodeCache::new(ram.len()), ram)
    }

    #[test]
    fn li_fuses_to_one_constant() {
        // `li` with a large constant expands to lui+addi.
        let (mut cache, ram) = setup("li t0, 0x12345\nnop\necall");
        let block = compile(&mut cache, &ram, 0).unwrap().block;
        assert!(matches!(
            block.ops[0].kind,
            OpKind::LoadImm { value: 0x12345, .. }
        ));
        assert_eq!(block.body_instrs, 3, "lui+addi fused + nop");
        assert!(matches!(block.term, Terminator::Plain { .. })); // ecall
        assert_eq!(block.total_instrs, 4);
    }

    #[test]
    fn cmp_branch_fuses_the_trailing_alu_op() {
        let (mut cache, ram) = setup(
            "loop: addi t0, t0, -1
bnez t0, loop
ecall",
        );
        let block = compile(&mut cache, &ram, 0).unwrap().block;
        assert!(block.ops.is_empty(), "the addi moved into the terminator");
        match block.term {
            Terminator::CmpBranch {
                taken_pc, fall_pc, ..
            } => {
                assert_eq!(taken_pc, 0);
                assert_eq!(fall_pc, 8);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(block.total_instrs, 2);
    }

    #[test]
    fn load_use_pair_fuses() {
        let (mut cache, ram) = setup(
            "lbu t0, 0(t1)
addi t0, t0, 5
sw t0, 4(t1)
jal zero, 0",
        );
        let block = compile(&mut cache, &ram, 0).unwrap().block;
        assert!(matches!(block.ops[0].kind, OpKind::LoadUse { .. }));
        assert!(matches!(block.ops[1].kind, OpKind::Store { .. }));
        assert!(matches!(
            block.term,
            Terminator::Plain {
                inst: Inst::Jal { .. },
                ..
            }
        ));
        // lbu(2) + addi(1) + sw(1) static body cycles.
        assert_eq!(block.body_cycles, 4);
        assert_eq!(block.total_instrs, 4);
    }

    #[test]
    fn pq_ops_stay_in_the_body() {
        let (mut cache, ram) = setup(
            "pq.modq t0, t1, t2
addi t0, t0, 1
ecall",
        );
        let block = compile(&mut cache, &ram, 0).unwrap().block;
        assert!(matches!(block.ops[0].kind, OpKind::Pq { .. }));
        assert_eq!(block.body_instrs, 2);
    }

    #[test]
    fn block_ends_before_an_undecodable_slot() {
        let (mut cache, mut ram) = setup("addi t0, t0, 1\naddi t0, t0, 2");
        ram[8..12].copy_from_slice(&0xffff_ffffu32.to_le_bytes());
        let block = compile(&mut cache, &ram, 0).unwrap().block;
        assert_eq!(block.ops.len(), 2);
        assert!(matches!(block.term, Terminator::FallThrough));
        assert_eq!(block.term_pc, 8, "trap raised by the interpreter at 8");
        // A head sitting directly on the bad slot does not compile.
        assert!(compile(&mut cache, &ram, 8).is_none());
    }

    #[test]
    fn store_invalidation_marks_the_block_stale() {
        let (mut cache, ram) = setup("addi t0, t0, 1\necall");
        let cached = compile(&mut cache, &ram, 0).unwrap();
        assert!(cached.lines_current(&cache));
        cache.invalidate(4, 1); // overwrites the ecall
        assert!(!cached.lines_current(&cache));
    }

    #[test]
    fn distant_stores_leave_the_block_current() {
        let (mut cache, ram) = setup("addi t0, t0, 1\necall");
        let cached = compile(&mut cache, &ram, 0).unwrap();
        cache.invalidate(0x8000, 4); // data line, never predecoded
        assert!(cached.lines_current(&cache));
    }

    #[test]
    fn cap_bounds_block_length() {
        let body = "addi t0, t0, 1\n".repeat(MAX_OPS * 2);
        let (mut cache, ram) = setup(&format!("{body}ecall"));
        let block = compile(&mut cache, &ram, 0).unwrap().block;
        assert_eq!(block.ops.len(), MAX_OPS);
        assert!(matches!(block.term, Terminator::FallThrough));
        assert_eq!(block.term_pc, 4 * MAX_OPS as u32);
        assert_eq!(block.total_instrs, MAX_OPS as u64);
    }

    #[test]
    fn lui_to_x0_does_not_fold_the_addi() {
        // `lui x0` discards; the addi reads a real zero.
        let (mut cache, ram) = setup("lui x0, 0x12\naddi x0, x0, 3\necall");
        let block = compile(&mut cache, &ram, 0).unwrap().block;
        assert_eq!(block.body_instrs, 2, "no fusion");
        assert!(matches!(block.ops[0].kind, OpKind::LoadImm { rd: 0, .. }));
    }

    #[test]
    fn end_pc_covers_the_terminator_encoding() {
        let (mut cache, ram) = setup("addi t0, t0, 1\nnop\necall");
        let block = compile(&mut cache, &ram, 0).unwrap().block;
        assert_eq!(block.term_pc, 8);
        assert_eq!(block.end_pc, 12, "ecall's 4 encoding bytes included");

        // FallThrough: end_pc is the resume PC (first byte past the body).
        let (mut cache, mut ram) = setup("addi t0, t0, 1\naddi t0, t0, 2");
        ram[8..12].copy_from_slice(&0xffff_ffffu32.to_le_bytes());
        let block = compile(&mut cache, &ram, 0).unwrap().block;
        assert_eq!(block.end_pc, block.term_pc);
    }

    #[test]
    fn resolve_slots_clamps_and_rounds() {
        assert_eq!(resolve_slots(None), DEFAULT_SLOTS);
        assert_eq!(resolve_slots(Some("not-a-number")), DEFAULT_SLOTS);
        assert_eq!(resolve_slots(Some("")), DEFAULT_SLOTS);
        assert_eq!(resolve_slots(Some("1024")), 1024);
        assert_eq!(
            resolve_slots(Some(" 300 ")),
            512,
            "rounds up to a power of two"
        );
        assert_eq!(resolve_slots(Some("1")), 16, "floor");
        assert_eq!(resolve_slots(Some("99999999")), 1 << 20, "ceiling");
    }

    #[test]
    fn with_slots_sizes_the_direct_map() {
        let cache = SuperblockCache::with_slots(64);
        assert_eq!(cache.slot_count(), 64);
        // Two PCs that collide under 64 slots but not under the default.
        assert_eq!(cache.index(0), cache.index(128));
        let big = SuperblockCache::with_slots(DEFAULT_SLOTS);
        assert_ne!(big.index(0), big.index(128));
    }

    #[test]
    fn shared_cache_validates_code_bytes_on_lookup() {
        let (mut cache, mut ram) = setup("addi t0, t0, 1\necall");
        let cached = compile(&mut cache, &ram, 0).unwrap();
        let block = &cached.block;
        let code = ram[..block.end_pc as usize].to_vec();

        let shared = SharedTraceCache::new();
        assert!(shared.publish(0, &code, block));
        assert!(!shared.publish(0, &code, block), "identical version dedups");

        // Matching bytes → install; the returned Arc is the same block.
        let hit = shared.lookup(0, &ram).expect("bytes match");
        assert!(Arc::ptr_eq(&hit, block));

        // Rewrite one code byte → the byte compare rejects the entry.
        ram[0] ^= 0xff;
        assert!(shared.lookup(0, &ram).is_none());

        let stats = shared.stats();
        assert_eq!(stats.publishes, 1);
        assert_eq!(stats.installs, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.blocks, 1);
    }

    #[test]
    fn shared_cache_bounds_versions_per_head() {
        let (mut cache, ram) = setup("addi t0, t0, 1\necall");
        let cached = compile(&mut cache, &ram, 0).unwrap();
        let shared = SharedTraceCache::new();
        for v in 0..2 * SHARED_VERSIONS_PER_HEAD as u8 {
            assert!(shared.publish(0, &[v], &cached.block));
        }
        assert_eq!(
            shared.stats().blocks,
            SHARED_VERSIONS_PER_HEAD as u64,
            "oldest versions evicted"
        );
    }

    #[test]
    fn snapshot_restore_round_trips_slots() {
        let (mut pre, ram) = setup("addi t0, t0, 1\necall");
        let cached = compile(&mut pre, &ram, 0).unwrap();
        let mut cache = SuperblockCache::with_slots(64);
        let idx = cache.index(0);
        let slot = cache.slot_mut(idx);
        slot.tag = 0;
        slot.heat = HOT_THRESHOLD;
        slot.block = Some(Box::new(cached));
        cache.stats.compiles = 1;

        let images = cache.snapshot_slots();
        assert_eq!(images.len(), 1);
        let stats = cache.stats;

        let mut other = SuperblockCache::with_slots(16);
        other.restore_slots(64, &images, stats);
        assert_eq!(other.slot_count(), 64, "capacity follows the snapshot");
        let restored = other.slot_mut(idx);
        assert_eq!(restored.tag, 0);
        assert!(restored.block.is_some());
        assert_eq!(other.stats.compiles, 1);
    }
}
