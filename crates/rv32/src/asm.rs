//! A small two-pass RV32IM assembler.
//!
//! Supports labels, ABI register names, decimal/hex immediates, the common
//! pseudo-instructions (`li`, `la`, `mv`, `j`, `call`, `ret`, `beqz`, …),
//! the `.word`/`.space` data directives, and the four `pq.*` custom
//! mnemonics. Enough to write the programs the examples and tests run on
//! the simulator; not a full GNU-as replacement.
//!
//! # Example
//!
//! ```
//! let words = lac_rv32::assemble("li a0, 7\necall").unwrap();
//! assert_eq!(words.len(), 2);
//! ```

use crate::inst::PQ_OPCODE;
use std::collections::HashMap;
use std::fmt;

/// Assembly failure with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn reg(name: &str, line: usize) -> Result<u32, AsmError> {
    let name = name.trim();
    let idx = match name {
        "zero" => 0,
        "ra" => 1,
        "sp" => 2,
        "gp" => 3,
        "tp" => 4,
        "t0" => 5,
        "t1" => 6,
        "t2" => 7,
        "s0" | "fp" => 8,
        "s1" => 9,
        "a0" => 10,
        "a1" => 11,
        "a2" => 12,
        "a3" => 13,
        "a4" => 14,
        "a5" => 15,
        "a6" => 16,
        "a7" => 17,
        "t3" => 28,
        "t4" => 29,
        "t5" => 30,
        "t6" => 31,
        _ => {
            if let Some(rest) = name.strip_prefix('s') {
                if let Ok(i) = rest.parse::<u32>() {
                    if (2..=11).contains(&i) {
                        return Ok(i + 16);
                    }
                }
            }
            if let Some(rest) = name.strip_prefix('x') {
                if let Ok(i) = rest.parse::<u32>() {
                    if i < 32 {
                        return Ok(i);
                    }
                }
            }
            return Err(AsmError {
                line,
                message: format!("unknown register '{name}'"),
            });
        }
    };
    Ok(idx)
}

fn parse_int(text: &str, line: usize) -> Result<i64, AsmError> {
    let t = text.trim();
    let (neg, t) = if let Some(rest) = t.strip_prefix('-') {
        (true, rest)
    } else {
        (false, t)
    };
    let value = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse::<i64>()
    }
    .map_err(|_| AsmError {
        line,
        message: format!("invalid immediate '{text}'"),
    })?;
    Ok(if neg { -value } else { value })
}

#[derive(Debug, Clone)]
enum Operand {
    /// A numeric immediate (value parsed later, with line context).
    Imm,
    Label(String),
}

fn parse_imm_or_label(text: &str) -> Operand {
    let t = text.trim();
    let first = t.chars().next().unwrap_or(' ');
    if first.is_ascii_digit() || first == '-' {
        Operand::Imm
    } else {
        Operand::Label(t.to_string())
    }
}

// Encoders -------------------------------------------------------------

fn enc_r(f7: u32, rs2: u32, rs1: u32, f3: u32, rd: u32, opcode: u32) -> u32 {
    (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opcode
}

fn enc_i(imm: i32, rs1: u32, f3: u32, rd: u32, opcode: u32) -> u32 {
    (((imm as u32) & 0xfff) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opcode
}

fn enc_s(imm: i32, rs2: u32, rs1: u32, f3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    (((imm >> 5) & 0x7f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (f3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode
}

fn enc_b(imm: i32, rs2: u32, rs1: u32, f3: u32) -> u32 {
    let imm = imm as u32;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (f3 << 12)
        | (((imm >> 1) & 0xf) << 8)
        | (((imm >> 11) & 1) << 7)
        | 0x63
}

fn enc_u(imm: i32, rd: u32, opcode: u32) -> u32 {
    ((imm as u32) & 0xffff_f000) | (rd << 7) | opcode
}

fn enc_j(imm: i32, rd: u32) -> u32 {
    let imm = imm as u32;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xff) << 12)
        | (rd << 7)
        | 0x6f
}

// Line model ------------------------------------------------------------

#[derive(Debug, Clone)]
struct Item {
    line: usize,
    mnemonic: String,
    args: Vec<String>,
    addr: u32,
    size: u32,
}

fn split_args(rest: &str) -> Vec<String> {
    if rest.trim().is_empty() {
        return Vec::new();
    }
    rest.split(',').map(|a| a.trim().to_string()).collect()
}

fn csr_number(name: &str, line: usize) -> Result<u32, AsmError> {
    match name.trim() {
        "cycle" => Ok(0xc00),
        "cycleh" => Ok(0xc80),
        "instret" => Ok(0xc02),
        "instreth" => Ok(0xc82),
        "mscratch" => Ok(0x340),
        other => parse_int(other, line).map(|v| v as u32 & 0xfff),
    }
}

fn li_size(imm: i64) -> u32 {
    if (-2048..=2047).contains(&imm) {
        4
    } else {
        8
    }
}

/// Assemble `source` into instruction words, origin address 0.
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line for syntax errors,
/// unknown mnemonics/registers/labels, or out-of-range immediates.
pub fn assemble(source: &str) -> Result<Vec<u32>, AsmError> {
    // Pass 1: strip comments, collect labels and item sizes.
    let mut items: Vec<Item> = Vec::new();
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut addr: u32 = 0;

    for (line_no, raw) in source.lines().enumerate() {
        let line = line_no + 1;
        let mut text = raw;
        for marker in ["#", "//", ";"] {
            if let Some(pos) = text.find(marker) {
                text = &text[..pos];
            }
        }
        let mut text = text.trim();
        // Labels (possibly several on one line).
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if labels.insert(label.to_string(), addr).is_some() {
                return Err(AsmError {
                    line,
                    message: format!("duplicate label '{label}'"),
                });
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(pos) => (text[..pos].to_lowercase(), &text[pos..]),
            None => (text.to_lowercase(), ""),
        };
        let args = split_args(rest);
        let size = match mnemonic.as_str() {
            ".word" | ".space" => {
                if args.len() != 1 {
                    return Err(AsmError {
                        line,
                        message: format!("{mnemonic} needs one argument"),
                    });
                }
                if mnemonic == ".word" {
                    4
                } else {
                    let n = parse_int(&args[0], line)? as u32;
                    n.div_ceil(4) * 4
                }
            }
            "li" => {
                if args.len() != 2 {
                    return Err(AsmError {
                        line,
                        message: "li needs rd, imm".into(),
                    });
                }
                li_size(parse_int(&args[1], line)?)
            }
            "la" | "call" => 8,
            _ => 4,
        };
        items.push(Item {
            line,
            mnemonic,
            args,
            addr,
            size,
        });
        addr += size;
    }

    // Pass 2: encode.
    let mut words: Vec<u32> = Vec::new();
    for item in &items {
        let line = item.line;
        let err = |message: String| AsmError { line, message };
        let label_addr = |name: &str| -> Result<u32, AsmError> {
            labels
                .get(name)
                .copied()
                .ok_or_else(|| err(format!("unknown label '{name}'")))
        };
        // Branch/jump target: label or numeric absolute offset.
        let target = |arg: &str| -> Result<i32, AsmError> {
            match parse_imm_or_label(arg) {
                Operand::Imm => Ok(parse_int(arg, line)? as i32),
                Operand::Label(name) => Ok(label_addr(&name)? as i32 - item.addr as i32),
            }
        };
        let need = |n: usize| -> Result<(), AsmError> {
            if item.args.len() == n {
                Ok(())
            } else {
                Err(err(format!(
                    "'{}' expects {n} operands, got {}",
                    item.mnemonic,
                    item.args.len()
                )))
            }
        };
        let r = |i: usize| reg(&item.args[i], line);
        let imm = |i: usize| parse_int(&item.args[i], line);
        // "off(rs)" operand.
        let mem = |i: usize| -> Result<(i32, u32), AsmError> {
            let a = &item.args[i];
            let open = a
                .find('(')
                .ok_or_else(|| err(format!("expected offset(reg), got '{a}'")))?;
            let close = a
                .rfind(')')
                .ok_or_else(|| err(format!("expected offset(reg), got '{a}'")))?;
            let off = if a[..open].trim().is_empty() {
                0
            } else {
                parse_int(&a[..open], line)? as i32
            };
            Ok((off, reg(&a[open + 1..close], line)?))
        };

        let m = item.mnemonic.as_str();
        match m {
            ".word" => {
                need(1)?;
                words.push(imm(0)? as u32);
                continue;
            }
            ".space" => {
                words.resize(words.len() + (item.size / 4) as usize, 0);
                continue;
            }
            _ => {}
        }

        let encoded: Vec<u32> = match m {
            // U-type
            "lui" => {
                need(2)?;
                vec![enc_u((imm(1)? as i32) << 12, r(0)?, 0x37)]
            }
            "auipc" => {
                need(2)?;
                vec![enc_u((imm(1)? as i32) << 12, r(0)?, 0x17)]
            }
            // Jumps
            "jal" => match item.args.len() {
                1 => vec![enc_j(target(&item.args[0])?, 1)],
                2 => vec![enc_j(target(&item.args[1])?, r(0)?)],
                _ => return Err(err("jal expects [rd,] label".into())),
            },
            "jalr" => match item.args.len() {
                1 => vec![enc_i(0, r(0)?, 0, 1, 0x67)],
                3 => vec![enc_i(imm(2)? as i32, r(1)?, 0, r(0)?, 0x67)],
                _ => return Err(err("jalr expects rd, rs1, imm".into())),
            },
            "j" => {
                need(1)?;
                vec![enc_j(target(&item.args[0])?, 0)]
            }
            "jr" => {
                need(1)?;
                vec![enc_i(0, r(0)?, 0, 0, 0x67)]
            }
            "call" => {
                need(1)?;
                let dest = label_addr(&item.args[0])?;
                let rel = dest as i32 - item.addr as i32;
                let upper = (rel + 0x800) >> 12;
                let lower = rel - (upper << 12);
                vec![enc_u(upper << 12, 1, 0x17), enc_i(lower, 1, 0, 1, 0x67)]
            }
            "ret" => vec![enc_i(0, 1, 0, 0, 0x67)],
            // Branches
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                need(3)?;
                let f3 = match m {
                    "beq" => 0,
                    "bne" => 1,
                    "blt" => 4,
                    "bge" => 5,
                    "bltu" => 6,
                    _ => 7,
                };
                vec![enc_b(target(&item.args[2])?, r(1)?, r(0)?, f3)]
            }
            "bgt" | "ble" | "bgtu" | "bleu" => {
                need(3)?;
                let f3 = match m {
                    "bgt" => 4,
                    "ble" => 5,
                    "bgtu" => 6,
                    _ => 7,
                };
                // Swap operands: bgt a,b = blt b,a
                vec![enc_b(target(&item.args[2])?, r(0)?, r(1)?, f3)]
            }
            "beqz" | "bnez" | "bltz" | "bgez" => {
                need(2)?;
                let f3 = match m {
                    "beqz" => 0,
                    "bnez" => 1,
                    "bltz" => 4,
                    _ => 5,
                };
                vec![enc_b(target(&item.args[1])?, 0, r(0)?, f3)]
            }
            // Loads / stores
            "lb" | "lh" | "lw" | "lbu" | "lhu" => {
                need(2)?;
                let f3 = match m {
                    "lb" => 0,
                    "lh" => 1,
                    "lw" => 2,
                    "lbu" => 4,
                    _ => 5,
                };
                let (off, base) = mem(1)?;
                vec![enc_i(off, base, f3, r(0)?, 0x03)]
            }
            "sb" | "sh" | "sw" => {
                need(2)?;
                let f3 = match m {
                    "sb" => 0,
                    "sh" => 1,
                    _ => 2,
                };
                let (off, base) = mem(1)?;
                vec![enc_s(off, r(0)?, base, f3, 0x23)]
            }
            // OP-IMM
            "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" => {
                need(3)?;
                let f3 = match m {
                    "addi" => 0,
                    "slti" => 2,
                    "sltiu" => 3,
                    "xori" => 4,
                    "ori" => 6,
                    _ => 7,
                };
                vec![enc_i(imm(2)? as i32, r(1)?, f3, r(0)?, 0x13)]
            }
            "slli" | "srli" | "srai" => {
                need(3)?;
                let sh = imm(2)? as u32 & 0x1f;
                let (f7, f3) = match m {
                    "slli" => (0u32, 1u32),
                    "srli" => (0, 5),
                    _ => (0x20, 5),
                };
                vec![enc_r(f7, sh, r(1)?, f3, r(0)?, 0x13)]
            }
            // OP
            "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and"
            | "mul" | "mulh" | "mulhsu" | "mulhu" | "div" | "divu" | "rem" | "remu" => {
                need(3)?;
                let (f7, f3) = match m {
                    "add" => (0x00u32, 0u32),
                    "sub" => (0x20, 0),
                    "sll" => (0x00, 1),
                    "slt" => (0x00, 2),
                    "sltu" => (0x00, 3),
                    "xor" => (0x00, 4),
                    "srl" => (0x00, 5),
                    "sra" => (0x20, 5),
                    "or" => (0x00, 6),
                    "and" => (0x00, 7),
                    "mul" => (0x01, 0),
                    "mulh" => (0x01, 1),
                    "mulhsu" => (0x01, 2),
                    "mulhu" => (0x01, 3),
                    "div" => (0x01, 4),
                    "divu" => (0x01, 5),
                    "rem" => (0x01, 6),
                    _ => (0x01, 7),
                };
                vec![enc_r(f7, r(2)?, r(1)?, f3, r(0)?, 0x33)]
            }
            // PQ custom instructions
            "pq.mul_ter" | "pq.mul_chien" | "pq.sha256" | "pq.modq" => {
                need(3)?;
                let f3 = match m {
                    "pq.mul_ter" => 0,
                    "pq.mul_chien" => 1,
                    "pq.sha256" => 2,
                    _ => 3,
                };
                vec![enc_r(0, r(2)?, r(1)?, f3, r(0)?, PQ_OPCODE)]
            }
            // Zicsr
            "csrrw" | "csrrs" | "csrrc" => {
                need(3)?;
                let f3 = match m {
                    "csrrw" => 1,
                    "csrrs" => 2,
                    _ => 3,
                };
                let csr = csr_number(&item.args[1], line)?;
                vec![(csr << 20) | (r(2)? << 15) | (f3 << 12) | (r(0)? << 7) | 0x73]
            }
            "csrr" => {
                need(2)?;
                let csr = csr_number(&item.args[1], line)?;
                vec![(csr << 20) | (2 << 12) | (r(0)? << 7) | 0x73]
            }
            "rdcycle" => {
                need(1)?;
                vec![(0xc00 << 20) | (2 << 12) | (r(0)? << 7) | 0x73]
            }
            "rdinstret" => {
                need(1)?;
                vec![(0xc02 << 20) | (2 << 12) | (r(0)? << 7) | 0x73]
            }
            // Pseudo
            "nop" => vec![enc_i(0, 0, 0, 0, 0x13)],
            "mv" => {
                need(2)?;
                vec![enc_i(0, r(1)?, 0, r(0)?, 0x13)]
            }
            "not" => {
                need(2)?;
                vec![enc_i(-1, r(1)?, 4, r(0)?, 0x13)]
            }
            "neg" => {
                need(2)?;
                vec![enc_r(0x20, r(1)?, 0, 0, r(0)?, 0x33)]
            }
            "seqz" => {
                need(2)?;
                vec![enc_i(1, r(1)?, 3, r(0)?, 0x13)]
            }
            "snez" => {
                need(2)?;
                vec![enc_r(0, r(1)?, 0, 3, r(0)?, 0x33)]
            }
            "li" => {
                need(2)?;
                let rd = r(0)?;
                let value = imm(1)?;
                if item.size == 4 {
                    vec![enc_i(value as i32, 0, 0, rd, 0x13)]
                } else {
                    let value = value as i32;
                    let upper = value.wrapping_add(0x800) >> 12;
                    let lower = value.wrapping_sub(upper << 12);
                    vec![enc_u(upper << 12, rd, 0x37), enc_i(lower, rd, 0, rd, 0x13)]
                }
            }
            "la" => {
                need(2)?;
                let rd = r(0)?;
                let dest = label_addr(&item.args[1])? as i32;
                let upper = dest.wrapping_add(0x800) >> 12;
                let lower = dest.wrapping_sub(upper << 12);
                vec![enc_u(upper << 12, rd, 0x37), enc_i(lower, rd, 0, rd, 0x13)]
            }
            "ecall" => vec![0x0000_0073],
            "ebreak" => vec![0x0010_0073],
            "fence" => vec![0x0000_000f],
            _ => {
                return Err(err(format!("unknown mnemonic '{m}'")));
            }
        };
        debug_assert_eq!(encoded.len() as u32 * 4, item.size, "size mismatch: {m}");
        words.extend(encoded);
    }
    Ok(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{decode, Inst};

    #[test]
    fn encodes_known_words() {
        // Cross-checked against GNU as output.
        assert_eq!(assemble("ret").unwrap(), vec![0x0000_8067]);
        assert_eq!(assemble("nop").unwrap(), vec![0x0000_0013]);
        assert_eq!(assemble("ecall").unwrap(), vec![0x0000_0073]);
        assert_eq!(assemble("addi a0, a0, 1").unwrap(), vec![0x0015_0513]);
        assert_eq!(assemble("add a0, a1, a2").unwrap(), vec![0x00c5_8533]);
        assert_eq!(assemble("lw a0, 4(sp)").unwrap(), vec![0x0041_2503]);
        assert_eq!(assemble("sw a0, 4(sp)").unwrap(), vec![0x00a1_2223]);
        assert_eq!(assemble("mul a0, a1, a2").unwrap(), vec![0x02c5_8533]);
    }

    #[test]
    fn li_small_and_large() {
        let small = assemble("li a0, -5").unwrap();
        assert_eq!(small.len(), 1);
        match decode(small[0]).unwrap() {
            Inst::OpImm {
                imm: -5, rd: 10, ..
            } => {}
            other => panic!("{other:?}"),
        }
        let large = assemble("li a0, 0x12345678").unwrap();
        assert_eq!(large.len(), 2);
    }

    #[test]
    fn labels_forward_and_backward() {
        let words = assemble(
            r#"
            start:
                beq  x0, x0, end
                nop
                j    start
            end:
                ecall
            "#,
        )
        .unwrap();
        // beq offset = +12 (3 instructions ahead).
        match decode(words[0]).unwrap() {
            Inst::Branch { offset, .. } => assert_eq!(offset, 12),
            other => panic!("{other:?}"),
        }
        // j offset = -8.
        match decode(words[2]).unwrap() {
            Inst::Jal { rd: 0, offset } => assert_eq!(offset, -8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pq_mnemonics_encode() {
        let words = assemble(
            "pq.mul_ter a0, a1, a2\npq.mul_chien a0, a1, a2\npq.sha256 a0, a1, a2\npq.modq a0, a1, a2",
        )
        .unwrap();
        for (i, w) in words.iter().enumerate() {
            assert_eq!(w & 0x7f, PQ_OPCODE);
            assert_eq!((w >> 12) & 7, i as u32);
        }
    }

    #[test]
    fn word_and_space_directives() {
        let words = assemble(".word 0xdeadbeef\n.space 8\n.word 7").unwrap();
        assert_eq!(words, vec![0xdead_beef, 0, 0, 7]);
    }

    #[test]
    fn la_resolves_data_labels() {
        let words = assemble(
            r#"
                la a0, data
                ecall
            data:
                .word 42
            "#,
        )
        .unwrap();
        assert_eq!(words.len(), 4);
        assert_eq!(words[3], 42);
    }

    #[test]
    fn abi_register_aliases() {
        let a = assemble("add s5, s11, fp").unwrap();
        let b = assemble("add x21, x27, x8").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus a0, a1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn unknown_label_reported() {
        let e = assemble("j nowhere").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("x:\nnop\nx:\nnop").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn comments_are_stripped() {
        let words = assemble("nop # trailing\n// whole line\n; also\nnop").unwrap();
        assert_eq!(words.len(), 2);
    }
}
