//! The x86-64 (SysV, Linux) emitter behind [`crate::jit`].
//!
//! One superblock becomes one `extern "C" fn(*mut JitCtx) -> u32` with a
//! second, chain entry point just past the prologue (see the
//! [`crate::jit`] module docs). The calling convention inside a block:
//!
//! * `rbx` — the [`crate::jit::JitCtx`] pointer,
//! * `r14` — the guest register file base (`ctx.regs`),
//! * `r12` — guest RAM base (`ctx.ram`),
//! * `rbp`/`r13`/`r15` — the block's pinned guest registers (the three
//!   hottest pre-resolved register indices, loaded at the chain entry and
//!   spilled on every exit path),
//! * `eax`/`ecx`/`edx` — scratch; unpinned guest registers stay
//!   memory-resident at `[r14 + 4*idx]` (disp8-addressable for all 32).
//!
//! All block-lived registers are callee-saved, so nothing is live across
//! the helper calls (PQ-ALU, division, store invalidation) by the SysV
//! ABI, and the helpers never touch the guest register file — pins
//! survive them without spilling.
//!
//! Writes to guest `x0` are elided at emit time; reads rely on the
//! `regs[0] == 0` invariant the interpreter maintains. Loads and stores
//! bounds-check `zext(addr) + width` against `ctx.ram_len` (exactly the
//! interpreter's `addr as usize + size > ram.len()`), jumping to a
//! per-op fault stub that reports [`crate::jit::EXIT_TRAP_MEM`]. Stores
//! additionally call the invalidation helper and bail through a stale
//! stub ([`crate::jit::EXIT_STORE_STALE`]) when they rewrote the running
//! block's own code lines. The prologue's `sub rsp, 8` keeps `rsp`
//! 16-byte aligned at every helper call site.
//!
//! Every fully-retiring exit commits the block's cycle/instruction
//! totals into the context in host code; a static-successor exit then
//! consults its [`crate::jit::ChainNode`] out-slot and either jumps
//! straight into the successor's chain entry (fuel permitting) or takes
//! the `EXIT_NEXT` path with `link_edge`/`link_from` filled in so the
//! dispatch loop can install the link.

use super::{ctx_off, node_off, EXIT_NEXT, EXIT_STORE_STALE, EXIT_TERM, EXIT_TRAP_MEM, LINK_NONE};
use crate::inst::{AluOp, BranchOp, Inst, LoadOp, StoreOp};
use crate::superblock::{Block, OpKind, Src2, Terminator};

/// Process-constant helper entry points baked into emitted code as
/// absolute `imm64` call targets.
pub(super) struct Helpers {
    pub(super) div: usize,
    pub(super) pq: usize,
    pub(super) store_inval: usize,
}

const EAX: u8 = 0;
const ECX: u8 = 1;
const EDX: u8 = 2;

/// Callee-saved hosts available for guest-register pinning, in
/// assignment order. `rbx`/`r12`/`r14` are the block bases.
const PIN_HOSTS: [u8; 3] = [5, 13, 15]; // rbp, r13, r15

/// Condition-code byte (`0F cc` long jump) that branches when the RISC-V
/// comparison holds.
fn branch_cc(op: BranchOp) -> u8 {
    match op {
        BranchOp::Eq => 0x84,  // je
        BranchOp::Ne => 0x85,  // jne
        BranchOp::Lt => 0x8c,  // jl
        BranchOp::Ge => 0x8d,  // jge
        BranchOp::Ltu => 0x82, // jb
        BranchOp::Geu => 0x83, // jae
    }
}

fn load_width(op: LoadOp) -> u8 {
    match op {
        LoadOp::Byte | LoadOp::ByteU => 1,
        LoadOp::Half | LoadOp::HalfU => 2,
        LoadOp::Word => 4,
    }
}

fn store_width(op: StoreOp) -> u8 {
    match op {
        StoreOp::Byte => 1,
        StoreOp::Half => 2,
        StoreOp::Word => 4,
    }
}

/// Static divider cycles of a fused compare-branch ALU op (mirrors the
/// block compiler's costing; folded into the committed terminator extra).
fn div_cycles(op: AluOp) -> u32 {
    match op {
        AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => 34,
        _ => 0,
    }
}

/// Exit stubs shared per faulting/bailing op, emitted after the body.
enum Stub {
    /// Memory fault at op `k`; the faulting address is live in `eax`.
    Fault(u32),
    /// Store at op `k` invalidated the running block.
    Stale(u32),
}

/// A tiny one-pass assembler: bytes plus label/rel32 fixups, plus the
/// block's guest-register pin assignment (consulted by every guest
/// register accessor).
struct Asm {
    code: Vec<u8>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, usize)>,
    /// `(guest, host)` pin pairs (≤ [`PIN_HOSTS`] entries).
    pins: Vec<(u8, u8)>,
}

impl Asm {
    fn new(pins: Vec<(u8, u8)>) -> Self {
        Self {
            code: Vec::with_capacity(1024),
            labels: Vec::new(),
            fixups: Vec::new(),
            pins,
        }
    }

    fn pin_of(&self, guest: u8) -> Option<u8> {
        self.pins
            .iter()
            .find(|&&(g, _)| g == guest)
            .map(|&(_, h)| h)
    }

    fn label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind(&mut self, label: usize) {
        self.labels[label] = Some(self.code.len());
    }

    fn bytes(&mut self, bytes: &[u8]) {
        self.code.extend_from_slice(bytes);
    }

    fn d32(&mut self, v: u32) {
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    fn rel32(&mut self, label: usize) {
        self.fixups.push((self.code.len(), label));
        self.d32(0);
    }

    /// `jmp rel32`.
    fn jmp(&mut self, label: usize) {
        self.bytes(&[0xe9]);
        self.rel32(label);
    }

    /// `jcc rel32` (long form).
    fn jcc(&mut self, cc: u8, label: usize) {
        self.bytes(&[0x0f, cc]);
        self.rel32(label);
    }

    /// `mov <dst32>, <src32>` for any host registers.
    fn mov_rr(&mut self, dst: u8, src: u8) {
        let rex = 0x40 | (u8::from(dst >= 8) << 2) | u8::from(src >= 8);
        if rex != 0x40 {
            self.bytes(&[rex]);
        }
        self.bytes(&[0x8b, 0xc0 | ((dst & 7) << 3) | (src & 7)]);
    }

    /// `mov <host32>, [r14 + 4*guest]` — read a guest register from the
    /// register file, bypassing the pin map (pin fills only).
    fn load_guest_mem(&mut self, host: u8, guest: u8) {
        let rex = 0x41 | (u8::from(host >= 8) << 2);
        self.bytes(&[rex, 0x8b, 0x40 | ((host & 7) << 3) | 6, 4 * (guest & 31)]);
    }

    /// `mov [r14 + 4*guest], <host32>` — write a guest register to the
    /// register file, bypassing the pin map (spills only).
    fn store_guest_mem(&mut self, guest: u8, host: u8) {
        let rex = 0x41 | (u8::from(host >= 8) << 2);
        self.bytes(&[rex, 0x89, 0x40 | ((host & 7) << 3) | 6, 4 * (guest & 31)]);
    }

    /// Read a guest register into `<host32>` (from its pin if pinned).
    fn load_guest(&mut self, host: u8, guest: u8) {
        match self.pin_of(guest) {
            Some(pin) => self.mov_rr(host, pin),
            None => self.load_guest_mem(host, guest),
        }
    }

    /// Write `<host32>` to a guest register (to its pin if pinned). The
    /// caller guards `guest != 0`.
    fn store_guest(&mut self, guest: u8, host: u8) {
        match self.pin_of(guest) {
            Some(pin) => self.mov_rr(pin, host),
            None => self.store_guest_mem(guest, host),
        }
    }

    /// Write `imm32` to a guest register (to its pin if pinned).
    fn store_guest_imm(&mut self, guest: u8, imm: u32) {
        match self.pin_of(guest) {
            Some(pin) => self.mov_imm(pin, imm),
            None => {
                self.bytes(&[0x41, 0xc7, 0x46, 4 * (guest & 31)]);
                self.d32(imm);
            }
        }
    }

    /// Load every pin from the register file (chain entry).
    fn load_pins(&mut self) {
        for i in 0..self.pins.len() {
            let (guest, host) = self.pins[i];
            self.load_guest_mem(host, guest);
        }
    }

    /// Spill every pin back to the register file. Clobbers no scratch
    /// register (safe on fault paths where `eax` is live).
    fn spill_pins(&mut self) {
        for i in 0..self.pins.len() {
            let (guest, host) = self.pins[i];
            self.store_guest_mem(guest, host);
        }
    }

    /// `mov <host32>, imm32` for any host register.
    fn mov_imm(&mut self, host: u8, imm: u32) {
        if host >= 8 {
            self.bytes(&[0x41]);
        }
        self.bytes(&[0xb8 + (host & 7)]);
        self.d32(imm);
    }

    /// `mov dword [rbx + off], imm32` — write a `u32` context field.
    fn ctx_store_imm(&mut self, off: u8, imm: u32) {
        self.bytes(&[0xc7, 0x43, off]);
        self.d32(imm);
    }

    /// `mov [rbx + off], eax`.
    fn ctx_store_eax(&mut self, off: u8) {
        self.bytes(&[0x89, 0x43, off]);
    }

    /// `add qword [rbx + off], imm32` (elided when zero).
    fn ctx_add_imm(&mut self, off: u8, imm: u32) {
        if imm != 0 {
            self.bytes(&[0x48, 0x81, 0x40 | 3, off]);
            self.d32(imm);
        }
    }

    /// `mov rax, imm64; call rax` — call a helper at a process-constant
    /// address. `rsp` is 16-byte aligned here by the prologue.
    fn call(&mut self, addr: usize) {
        self.bytes(&[0x48, 0xb8]);
        self.code.extend_from_slice(&(addr as u64).to_le_bytes());
        self.bytes(&[0xff, 0xd0]);
    }

    /// `add eax, imm32` (elided when zero).
    fn add_eax(&mut self, imm: u32) {
        if imm != 0 {
            self.bytes(&[0x05]);
            self.d32(imm);
        }
    }

    /// Bounds check: `lea rcx, [rax + width]; cmp rcx, [rbx + RAM_LEN];
    /// ja fault`. `eax` holds the (zero-extended) guest address.
    fn bounds_check(&mut self, width: u8, fault: usize) {
        self.bytes(&[0x48, 0x8d, 0x48, width]);
        self.bytes(&[0x48, 0x3b, 0x4b, ctx_off::RAM_LEN]);
        self.jcc(0x87, fault); // ja: zext(addr) + width > ram_len
    }

    /// RISC-V ALU op with `a` in `eax`, `b` in `ecx`; result in `eax`.
    /// Divisions call the edge-case helper (cycles are statically
    /// accounted elsewhere).
    fn alu(&mut self, op: AluOp, helpers: &Helpers) {
        match op {
            AluOp::Add => self.bytes(&[0x01, 0xc8]),
            AluOp::Sub => self.bytes(&[0x29, 0xc8]),
            AluOp::Xor => self.bytes(&[0x31, 0xc8]),
            AluOp::Or => self.bytes(&[0x09, 0xc8]),
            AluOp::And => self.bytes(&[0x21, 0xc8]),
            // x86 masks 32-bit shift counts to 5 bits, same as `b & 31`.
            AluOp::Sll => self.bytes(&[0xd3, 0xe0]),
            AluOp::Srl => self.bytes(&[0xd3, 0xe8]),
            AluOp::Sra => self.bytes(&[0xd3, 0xf8]),
            AluOp::Slt => self.bytes(&[0x39, 0xc8, 0x0f, 0x9c, 0xc0, 0x0f, 0xb6, 0xc0]),
            AluOp::Sltu => self.bytes(&[0x39, 0xc8, 0x0f, 0x92, 0xc0, 0x0f, 0xb6, 0xc0]),
            AluOp::Mul => self.bytes(&[0x0f, 0xaf, 0xc1]),
            AluOp::Mulh => {
                // movsxd rax,eax; movsxd rcx,ecx; imul rax,rcx; shr rax,32
                self.bytes(&[0x48, 0x63, 0xc0, 0x48, 0x63, 0xc9]);
                self.bytes(&[0x48, 0x0f, 0xaf, 0xc1, 0x48, 0xc1, 0xe8, 0x20]);
            }
            AluOp::Mulhsu => {
                // movsxd rax,eax; mov ecx,ecx (zext); imul; shr 32
                self.bytes(&[0x48, 0x63, 0xc0, 0x89, 0xc9]);
                self.bytes(&[0x48, 0x0f, 0xaf, 0xc1, 0x48, 0xc1, 0xe8, 0x20]);
            }
            AluOp::Mulhu => {
                // mov eax,eax; mov ecx,ecx (both zext); imul; shr 32
                self.bytes(&[0x89, 0xc0, 0x89, 0xc9]);
                self.bytes(&[0x48, 0x0f, 0xaf, 0xc1, 0x48, 0xc1, 0xe8, 0x20]);
            }
            AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => {
                let sel = match op {
                    AluOp::Div => 0,
                    AluOp::Divu => 1,
                    AluOp::Rem => 2,
                    _ => 3,
                };
                self.bytes(&[0x89, 0xc6]); // mov esi, eax (a)
                self.bytes(&[0x89, 0xca]); // mov edx, ecx (b)
                self.mov_imm(7, sel); // mov edi, sel
                self.call(helpers.div);
            }
        }
    }

    /// Load `b` into `ecx` from a [`Src2`].
    fn load_src2(&mut self, src: Src2) {
        match src {
            Src2::Imm(imm) => self.mov_imm(ECX, imm),
            Src2::Reg(r) => self.load_guest(ECX, r),
        }
    }

    /// Memory read at the guest address in `eax` into `edx`, with the
    /// RISC-V width/extension.
    fn read_ram(&mut self, op: LoadOp) {
        // [r12 + rax] — modrm 0x14 (edx, SIB), SIB 0x04 (base r12, index rax).
        match op {
            LoadOp::Byte => self.bytes(&[0x41, 0x0f, 0xbe, 0x14, 0x04]),
            LoadOp::Half => self.bytes(&[0x41, 0x0f, 0xbf, 0x14, 0x04]),
            LoadOp::Word => self.bytes(&[0x41, 0x8b, 0x14, 0x04]),
            LoadOp::ByteU => self.bytes(&[0x41, 0x0f, 0xb6, 0x14, 0x04]),
            LoadOp::HalfU => self.bytes(&[0x41, 0x0f, 0xb7, 0x14, 0x04]),
        }
    }

    /// Memory write of `edx` at the guest address in `eax`.
    fn write_ram(&mut self, op: StoreOp) {
        match op {
            StoreOp::Byte => self.bytes(&[0x41, 0x88, 0x14, 0x04]),
            StoreOp::Half => self.bytes(&[0x66, 0x41, 0x89, 0x14, 0x04]),
            StoreOp::Word => self.bytes(&[0x41, 0x89, 0x14, 0x04]),
        }
    }

    /// Commit the fully-retired block's totals into the context:
    /// `ctx.cycles += body + extra (+ dyn, zeroing it)` and
    /// `ctx.instructions += total`. Clobbers `rax` when the block has
    /// dynamic (PQ) cycles.
    fn commit_accounting(&mut self, block: &Block, extra: u32, has_dyn: bool) {
        let static_cycles = block.body_cycles.wrapping_add(extra);
        if has_dyn {
            self.bytes(&[0x48, 0x8b, 0x43, ctx_off::DYN_CYCLES]); // mov rax, [rbx+DYN]
            self.bytes(&[0x48, 0xc7, 0x43, ctx_off::DYN_CYCLES]); // mov qword [rbx+DYN], 0
            self.d32(0);
            if static_cycles != 0 {
                self.bytes(&[0x48, 0x05]); // add rax, imm32
                self.d32(static_cycles);
            }
            self.bytes(&[0x48, 0x01, 0x43, ctx_off::CYCLES]); // add [rbx+CYCLES], rax
        } else {
            self.ctx_add_imm(ctx_off::CYCLES, static_cycles);
        }
        self.ctx_add_imm(ctx_off::INSTRUCTIONS, block.total_instrs as u32);
    }

    fn finish(self) -> Assembled {
        (self.code, self.fixups, self.labels)
    }
}

/// What [`Asm::finish`] hands back: the code bytes, the pending
/// label fixups as `(patch_site, label)` pairs, and the label targets.
type Assembled = (Vec<u8>, Vec<(usize, usize)>, Vec<Option<usize>>);

fn tally(count: &mut [u32; 32], r: u8) {
    if r & 31 != 0 {
        count[(r & 31) as usize] += 1;
    }
}

fn tally_src2(count: &mut [u32; 32], src: Src2) {
    if let Src2::Reg(r) = src {
        tally(count, r);
    }
}

/// Count guest-register accesses and pick the pin assignment: the up-to-3
/// hottest registers touched at least twice (a single touch never pays
/// for its entry load plus per-exit spill). `x0` is never pinned.
fn pick_pins(block: &Block) -> Vec<(u8, u8)> {
    let mut count = [0u32; 32];
    let c = &mut count;
    for op in block.ops.iter() {
        match op.kind {
            OpKind::LoadImm { rd, .. } | OpKind::Auipc { rd, .. } => tally(c, rd),
            OpKind::OpImm { rd, rs1, .. } => {
                tally(c, rd);
                tally(c, rs1);
            }
            OpKind::Op { rd, rs1, rs2, .. } => {
                tally(c, rd);
                tally(c, rs1);
                tally(c, rs2);
            }
            OpKind::Load { rd, rs1, .. } => {
                tally(c, rd);
                tally(c, rs1);
            }
            OpKind::AuipcLoad { rd, lrd, .. } => {
                tally(c, rd);
                tally(c, lrd);
            }
            OpKind::LoadUse {
                lrd,
                lrs1,
                ard,
                ars1,
                asrc,
                ..
            } => {
                tally(c, lrd);
                tally(c, lrs1);
                tally(c, ard);
                tally(c, ars1);
                tally_src2(c, asrc);
            }
            OpKind::Store { rs1, rs2, .. } => {
                tally(c, rs1);
                tally(c, rs2);
            }
            OpKind::Fence => {}
            OpKind::Pq { rd, rs1, rs2, .. } => {
                tally(c, rd);
                tally(c, rs1);
                tally(c, rs2);
            }
        }
    }
    match block.term {
        Terminator::Plain { inst, .. } => match inst {
            Inst::Jal { rd, .. } => tally(c, rd),
            Inst::Jalr { rd, rs1, .. } => {
                tally(c, rd);
                tally(c, rs1);
            }
            Inst::Branch { rs1, rs2, .. } => {
                tally(c, rs1);
                tally(c, rs2);
            }
            _ => {}
        },
        Terminator::CmpBranch {
            ard,
            ars1,
            asrc,
            brs1,
            brs2,
            ..
        } => {
            tally(c, ard);
            tally(c, ars1);
            tally(c, brs1);
            tally(c, brs2);
            tally_src2(c, asrc);
        }
        Terminator::FallThrough => {}
    }
    let mut hot: Vec<u8> = (1u8..32).filter(|&r| count[r as usize] >= 2).collect();
    hot.sort_by_key(|&r| (std::cmp::Reverse(count[r as usize]), r));
    hot.truncate(PIN_HOSTS.len());
    hot.iter()
        .zip(PIN_HOSTS)
        .map(|(&guest, host)| (guest, host))
        .collect()
}

/// Lower one block to host code (see the module docs for the register
/// conventions and the [`crate::jit`] docs for the exit protocol).
/// Returns the code bytes and the byte offset of the chain entry.
pub(super) fn emit(block: &Block, helpers: &Helpers) -> (Vec<u8>, usize) {
    let mut a = Asm::new(pick_pins(block));
    let epi = a.label();
    let mut stubs: Vec<(usize, Stub)> = Vec::new();
    let has_dyn = block
        .ops
        .iter()
        .any(|op| matches!(op.kind, OpKind::Pq { .. }));
    let head_pc = block.head_pc;

    // Prologue: save callee-saved registers, align rsp for helper calls,
    // load ctx (rbx), regs (r14), ram (r12).
    a.bytes(&[0x53, 0x41, 0x54, 0x41, 0x55, 0x41, 0x56, 0x41, 0x57, 0x55]);
    a.bytes(&[0x48, 0x83, 0xec, 0x08]); // sub rsp, 8
    a.bytes(&[0x48, 0x89, 0xfb]); // mov rbx, rdi
    a.bytes(&[0x4c, 0x8b, 0x73, ctx_off::REGS]); // mov r14, [rbx+REGS]
    a.bytes(&[0x4c, 0x8b, 0x63, ctx_off::RAM]); // mov r12, [rbx+RAM]

    // Chain entry: a predecessor's link jump lands here — rbx/r14/r12
    // are already live (same CPU, same context), only the pins differ
    // per block.
    let chain_entry = a.code.len();
    a.load_pins();

    for (k, op) in block.ops.iter().enumerate() {
        emit_op(&mut a, &mut stubs, helpers, k as u32, &op.kind);
    }
    emit_terminator(&mut a, helpers, block, head_pc, has_dyn, epi);

    // Per-op exit stubs. Pins spill first (the spill clobbers nothing,
    // so the faulting address stays live in eax).
    for (label, stub) in stubs {
        a.bind(label);
        a.spill_pins();
        match stub {
            Stub::Fault(k) => {
                a.ctx_store_eax(ctx_off::FAULT_ADDR);
                a.ctx_store_imm(ctx_off::EXIT_OP, k);
                a.mov_imm(EAX, EXIT_TRAP_MEM);
                a.jmp(epi);
            }
            Stub::Stale(k) => {
                a.ctx_store_imm(ctx_off::EXIT_OP, k);
                a.mov_imm(EAX, EXIT_STORE_STALE);
                a.jmp(epi);
            }
        }
    }

    // Epilogue: undo the alignment pad, restore, return (eax = exit code).
    a.bind(epi);
    a.bytes(&[0x48, 0x83, 0xc4, 0x08]); // add rsp, 8
    a.bytes(&[
        0x5d, 0x41, 0x5f, 0x41, 0x5e, 0x41, 0x5d, 0x41, 0x5c, 0x5b, 0xc3,
    ]);
    let (mut code, fixups, labels) = a.finish();
    for (pos, label) in fixups {
        let target = labels[label].expect("unbound jit label");
        let rel = (target as i64 - (pos as i64 + 4)) as i32;
        code[pos..pos + 4].copy_from_slice(&rel.to_le_bytes());
    }
    (code, chain_entry)
}

fn emit_op(a: &mut Asm, stubs: &mut Vec<(usize, Stub)>, helpers: &Helpers, k: u32, kind: &OpKind) {
    let fault = |a: &mut Asm, stubs: &mut Vec<(usize, Stub)>| {
        let label = a.label();
        stubs.push((label, Stub::Fault(k)));
        label
    };
    match *kind {
        OpKind::LoadImm { rd, value } | OpKind::Auipc { rd, value } => {
            if rd != 0 {
                a.store_guest_imm(rd, value);
            }
        }
        OpKind::OpImm { op, rd, rs1, imm } => {
            if rd != 0 {
                a.load_guest(EAX, rs1);
                a.mov_imm(ECX, imm);
                a.alu(op, helpers);
                a.store_guest(rd, EAX);
            }
        }
        OpKind::Op { op, rd, rs1, rs2 } => {
            if rd != 0 {
                a.load_guest(EAX, rs1);
                a.load_guest(ECX, rs2);
                a.alu(op, helpers);
                a.store_guest(rd, EAX);
            }
        }
        OpKind::Load {
            op,
            rd,
            rs1,
            offset,
        } => {
            let f = fault(a, stubs);
            a.load_guest(EAX, rs1);
            a.add_eax(offset);
            a.bounds_check(load_width(op), f);
            a.read_ram(op);
            if rd != 0 {
                a.store_guest(rd, EDX);
            }
        }
        OpKind::AuipcLoad {
            op,
            rd,
            lrd,
            addr,
            value,
            ..
        } => {
            // The auipc half retires (writes rd) even if the load faults.
            if rd != 0 {
                a.store_guest_imm(rd, value);
            }
            let f = fault(a, stubs);
            a.mov_imm(EAX, addr);
            a.bounds_check(load_width(op), f);
            a.read_ram(op);
            if lrd != 0 {
                a.store_guest(lrd, EDX);
            }
        }
        OpKind::LoadUse {
            lop,
            lrd,
            lrs1,
            loffset,
            aop,
            ard,
            ars1,
            asrc,
        } => {
            let f = fault(a, stubs);
            a.load_guest(EAX, lrs1);
            a.add_eax(loffset);
            a.bounds_check(load_width(lop), f);
            a.read_ram(lop);
            if lrd != 0 {
                a.store_guest(lrd, EDX);
            }
            // The ALU half reads the register file after the load wrote
            // it (ars1/asrc may name lrd).
            if ard != 0 {
                a.load_guest(EAX, ars1);
                a.load_src2(asrc);
                a.alu(aop, helpers);
                a.store_guest(ard, EAX);
            }
        }
        OpKind::Store {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let f = fault(a, stubs);
            a.load_guest(EAX, rs1);
            a.add_eax(offset);
            a.bounds_check(store_width(op), f);
            a.load_guest(EDX, rs2);
            a.write_ram(op);
            // Predecode coherency + self-modification check, in Rust.
            a.bytes(&[0x48, 0x89, 0xdf]); // mov rdi, rbx (ctx)
            a.bytes(&[0x89, 0xc6]); // mov esi, eax (addr)
            a.mov_imm(EDX, u32::from(store_width(op)));
            a.call(helpers.store_inval);
            a.bytes(&[0x85, 0xc0]); // test eax, eax
            let stale = a.label();
            stubs.push((stale, Stub::Stale(k)));
            a.jcc(0x85, stale); // jnz: the store hit our own code
        }
        OpKind::Fence => {}
        OpKind::Pq { unit, rd, rs1, rs2 } => {
            // The device always runs (state machine + stall), even when
            // the destination is x0.
            a.bytes(&[0x48, 0x89, 0xdf]); // mov rdi, rbx (ctx)
            a.mov_imm(6, unit.funct3()); // mov esi, funct3
            a.load_guest(EDX, rs1);
            a.load_guest(ECX, rs2);
            a.call(helpers.pq);
            if rd != 0 {
                a.store_guest(rd, EAX);
            }
        }
    }
}

/// Per-block facts every static exit shares: the block, its dispatch
/// anchor PC, whether it accumulates dynamic PQ stalls, and the
/// epilogue label.
struct ExitEnv<'a> {
    block: &'a Block,
    head_pc: u32,
    has_dyn: bool,
    epi: usize,
}

/// A fully-retiring exit to a *static* successor: spill, commit, then
/// try the chain link for `edge` (0 = fall/static next, 1 = taken). A
/// null slot — or too little fuel for the successor's whole block — takes
/// the `EXIT_NEXT` path with the link request filled in.
fn exit_static(a: &mut Asm, env: &ExitEnv, next_pc: u32, extra: u32, edge: u8) {
    let &ExitEnv {
        block,
        head_pc,
        has_dyn,
        epi,
    } = env;
    a.spill_pins();
    a.commit_accounting(block, extra, has_dyn);
    let miss = a.label();
    // rax = ctx.node->out[edge]; null means unlinked.
    a.bytes(&[0x48, 0x8b, 0x43, ctx_off::NODE]);
    a.bytes(&[0x48, 0x8b, 0x40, node_off::OUT + 8 * edge]);
    a.bytes(&[0x48, 0x85, 0xc0]); // test rax, rax
    a.jcc(0x84, miss); // jz
                       // Fuel gate: the dispatch loop's `fuel >= total_instrs` precondition,
                       // applied to the successor in host code.
    a.bytes(&[0x48, 0x8b, 0x48, node_off::TOTAL_INSTRS]); // mov rcx, [rax+TOTAL]
    a.bytes(&[0x48, 0x39, 0x4b, ctx_off::FUEL]); // cmp [rbx+FUEL], rcx
    a.jcc(0x82, miss); // jb: not enough fuel to chain
    a.bytes(&[0x48, 0x29, 0x4b, ctx_off::FUEL]); // sub [rbx+FUEL], rcx
    a.bytes(&[0x48, 0xff, 0x43, ctx_off::CHAINED]); // inc qword [rbx+CHAINED]
                                                    // Switch the context to the successor: node and validity pairs.
    a.bytes(&[0x48, 0x89, 0x43, ctx_off::NODE]); // mov [rbx+NODE], rax
    a.bytes(&[0x48, 0x8d, 0x48, node_off::LINES]); // lea rcx, [rax+LINES]
    a.bytes(&[0x48, 0x89, 0x4b, ctx_off::LINES]); // mov [rbx+LINES], rcx
    a.bytes(&[0x48, 0x8b, 0x48, node_off::LINES_LEN]); // mov rcx, [rax+LINES_LEN]
    a.bytes(&[0x48, 0x89, 0x4b, ctx_off::LINES_LEN]); // mov [rbx+LINES_LEN], rcx
                                                      // jmp qword [rax]: the zero displacement IS node_off::ENTRY.
    const _: () = assert!(node_off::ENTRY == 0);
    a.bytes(&[0xff, 0x20]);
    a.bind(miss);
    a.ctx_store_imm(ctx_off::NEXT_PC, next_pc);
    a.ctx_store_imm(ctx_off::LINK_EDGE, u32::from(edge));
    a.ctx_store_imm(ctx_off::LINK_FROM, head_pc);
    a.mov_imm(EAX, EXIT_NEXT);
    a.jmp(epi);
}

fn emit_terminator(
    a: &mut Asm,
    helpers: &Helpers,
    block: &Block,
    head_pc: u32,
    has_dyn: bool,
    epi: usize,
) {
    let env = &ExitEnv {
        block,
        head_pc,
        has_dyn,
        epi,
    };
    match block.term {
        Terminator::FallThrough => exit_static(a, env, block.term_pc, 0, 0),
        Terminator::Plain { inst, len, .. } => {
            let fall_pc = block.term_pc.wrapping_add(u32::from(len));
            match inst {
                Inst::Jal { rd, offset } => {
                    if rd != 0 {
                        a.store_guest_imm(rd, fall_pc);
                    }
                    let target = block.term_pc.wrapping_add(offset as u32);
                    exit_static(a, env, target, 3, 0);
                }
                Inst::Jalr { rd, rs1, offset } => {
                    // Target first: rs1 may alias rd.
                    a.load_guest(EAX, rs1);
                    a.add_eax(offset as u32);
                    a.bytes(&[0x83, 0xe0, 0xfe]); // and eax, -2
                    if rd != 0 {
                        a.store_guest_imm(rd, fall_pc);
                    }
                    a.spill_pins();
                    a.ctx_store_eax(ctx_off::NEXT_PC);
                    // Dynamic target: never linkable (commit clobbers rax
                    // only after next_pc is stored).
                    a.commit_accounting(block, 3, has_dyn);
                    a.ctx_store_imm(ctx_off::LINK_EDGE, LINK_NONE);
                    a.mov_imm(EAX, EXIT_NEXT);
                    a.jmp(epi);
                }
                Inst::Branch {
                    op,
                    rs1,
                    rs2,
                    offset,
                } => {
                    a.load_guest(EAX, rs1);
                    a.load_guest(ECX, rs2);
                    a.bytes(&[0x39, 0xc8]); // cmp eax, ecx
                    let taken = a.label();
                    a.jcc(branch_cc(op), taken);
                    exit_static(a, env, fall_pc, 1, 0);
                    a.bind(taken);
                    let target = block.term_pc.wrapping_add(offset as u32);
                    exit_static(a, env, target, 3, 1);
                }
                // CSR reads must observe live counters, ecall/ebreak need
                // the interpreter's exit/trap plumbing: hand back to Rust
                // (which runs the shared execute core — correct for any
                // terminator, so this is also the safe default).
                _ => {
                    a.spill_pins();
                    a.mov_imm(EAX, EXIT_TERM);
                    a.jmp(epi);
                }
            }
        }
        Terminator::CmpBranch {
            aop,
            ard,
            ars1,
            asrc,
            bop,
            brs1,
            brs2,
            taken_pc,
            fall_pc,
        } => {
            if ard != 0 {
                a.load_guest(EAX, ars1);
                a.load_src2(asrc);
                a.alu(aop, helpers);
                a.store_guest(ard, EAX);
            }
            // The compare reads the register file after the ALU write
            // (brs1/brs2 name ard in the fused idiom).
            a.load_guest(EAX, brs1);
            a.load_guest(ECX, brs2);
            a.bytes(&[0x39, 0xc8]); // cmp eax, ecx
            let taken = a.label();
            a.jcc(branch_cc(bop), taken);
            let extra = 2 + div_cycles(aop);
            exit_static(a, env, fall_pc, extra, 0);
            a.bind(taken);
            exit_static(a, env, taken_pc, extra + 2, 1);
        }
    }
}
