//! The RISCY-like CPU interpreter.
//!
//! A functional interpreter with a documented cycle model approximating the
//! 4-stage RISCY pipeline:
//!
//! * 1 cycle per instruction,
//! * +1 cycle load-use penalty on loads,
//! * +2 cycles for taken branches and jumps (fetch flush),
//! * +34 cycles for divisions (iterative divider),
//! * PQ instructions stall for however long the PQ-ALU device reports.
//!
//! Four execution engines share one `execute` core, so they are
//! architecturally indistinguishable (same registers, memory, traps,
//! modelled cycles and retired-instruction counts):
//!
//! * the **JIT engine** ([`Engine::Jit`]; see [`crate::jit`]) lowers
//!   compiled superblocks to host machine code in W^X exec buffers and
//!   retires them natively, degrading to the superblock interpreter on
//!   unsupported hosts;
//! * the **superblock engine** (default; see [`crate::superblock`])
//!   compiles hot straight-line regions into trace-cached blocks of fused
//!   macro-ops and retires them whole;
//! * the **predecoded engine** ([`Engine::Predecode`]; see
//!   [`crate::predecode`]) decodes each 16-bit code slot once into a
//!   direct-mapped cache and dispatches single instructions from it —
//!   stores into cached code invalidate the affected lines, so
//!   self-modifying code still works;
//! * the **decode-every-step classic engine** ([`Cpu::step`], enabled
//!   with [`Cpu::set_predecode`]`(false)` or [`Engine::Classic`])
//!   re-decodes on every instruction and serves as the differential
//!   oracle for the fast engines.

use crate::inst::{decode, decompress, AluOp, BranchOp, CsrOp, Inst, LoadOp, PqUnit, StoreOp};
use crate::jit::{self, JitCtx, JitState, JitStats};
use crate::pq::PqAlu;
use crate::predecode::{PredecodeCache, Slot};
use crate::superblock::{
    self, BlockSlot, CachedBlock, OpKind, SharedTraceCache, Src2, SuperblockCache, SuperblockStats,
    Terminator, HOT_THRESHOLD, LINE_SHIFT, MAX_LINES, MAX_OPS,
};
use crate::warm::{WarmImage, WarmState};
use std::fmt;
use std::sync::Arc;

/// Which execution engine [`Cpu::run`] dispatches through. All four are
/// bit-identical architecturally; they differ only in host speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Decode every instruction from RAM on every step — the slowest
    /// engine and the differential oracle the fast ones are tested
    /// against.
    Classic,
    /// Dispatch single instructions from the predecode cache.
    Predecode,
    /// Trace-cached superblock execution with macro-op fusion (default).
    Superblock,
    /// Superblocks lowered to host machine code (see [`crate::jit`]).
    /// Falls back to [`Engine::Superblock`] behaviour — silently, with a
    /// counter — on hosts without an emitter or when the exec buffer
    /// cannot be mapped.
    Jit,
}

/// Reasons execution stopped abnormally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// An instruction word failed to decode.
    IllegalInstruction {
        /// Faulting PC.
        pc: u32,
        /// Raw instruction bits.
        word: u32,
    },
    /// A data access fell outside RAM.
    MemoryFault {
        /// Faulting PC.
        pc: u32,
        /// Faulting data address.
        addr: u32,
    },
    /// Instruction fetch fell outside RAM.
    FetchFault {
        /// Faulting PC.
        pc: u32,
    },
    /// `ebreak` executed.
    Breakpoint {
        /// PC of the breakpoint.
        pc: u32,
    },
    /// The instruction budget given to [`Cpu::run`] was exhausted.
    OutOfFuel,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at {pc:#010x}")
            }
            Trap::MemoryFault { pc, addr } => {
                write!(f, "memory fault at address {addr:#010x} (pc {pc:#010x})")
            }
            Trap::FetchFault { pc } => write!(f, "fetch fault at {pc:#010x}"),
            Trap::Breakpoint { pc } => write!(f, "breakpoint at {pc:#010x}"),
            Trap::OutOfFuel => write!(f, "instruction budget exhausted"),
        }
    }
}

impl std::error::Error for Trap {}

/// Snapshot returned on a clean `ecall` exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExitState {
    /// Register file at exit.
    pub regs: [u32; 32],
    /// PC of the `ecall`.
    pub pc: u32,
    /// Modelled cycles consumed.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
}

impl ExitState {
    /// Read register `x<i>` at exit.
    pub fn reg(&self, i: usize) -> u32 {
        self.regs[i]
    }
}

/// In-flight copies of the performance counters for the instruction being
/// retired. The batched fast loop keeps these (plus the PC and fuel) in
/// locals across iterations instead of round-tripping through the `Cpu`
/// fields, and syncs them back at loop exits; [`Cpu::step`] loads and
/// stores them around every instruction. CSR reads inside `execute` must
/// observe these live values, never the possibly-stale fields.
struct Flight {
    cycles: u64,
    instructions: u64,
}

/// The simulated CPU: register file, PC, RAM and the PQ-ALU device.
#[derive(Debug)]
pub struct Cpu {
    regs: [u32; 32],
    pc: u32,
    ram: Vec<u8>,
    cycles: u64,
    instructions: u64,
    mscratch: u32,
    pq: PqAlu,
    cache: PredecodeCache,
    sb: SuperblockCache,
    jit: JitState,
    engine: Engine,
    /// Process-wide compiled-block pool this CPU publishes to and installs
    /// from (see [`SharedTraceCache`]); not part of snapshots.
    shared: Option<Arc<SharedTraceCache>>,
}

/// How a superblock execution handed control back to the dispatch loop.
enum BlockExit {
    /// Keep dispatching (normal completion or a store-invalidation bail).
    Continue,
    /// The terminator was a clean `ecall`.
    Ecall,
}

impl Cpu {
    /// Create a CPU with `ram_bytes` of zeroed RAM at address 0.
    pub fn new(ram_bytes: usize) -> Self {
        Self {
            regs: [0u32; 32],
            pc: 0,
            ram: vec![0u8; ram_bytes],
            cycles: 0,
            instructions: 0,
            mscratch: 0,
            pq: PqAlu::new(),
            cache: PredecodeCache::new(ram_bytes),
            sb: SuperblockCache::new(),
            jit: JitState::default(),
            engine: Engine::Superblock,
            shared: None,
        }
    }

    /// Attach a process-wide [`SharedTraceCache`]: superblocks this CPU
    /// compiles are published to it, and hot heads probe it before
    /// compiling locally. Purely a host-speed optimisation — shared
    /// entries are byte-validated on install and generation-validated on
    /// dispatch, so architectural results are unchanged.
    pub fn attach_shared_cache(&mut self, shared: Arc<SharedTraceCache>) {
        self.shared = Some(shared);
    }

    /// Detach the shared trace cache (locally-installed blocks remain).
    pub fn detach_shared_cache(&mut self) {
        self.shared = None;
    }

    /// The attached shared trace cache, if any.
    pub fn shared_cache(&self) -> Option<&Arc<SharedTraceCache>> {
        self.shared.as_ref()
    }

    /// Capture the whole machine — architectural state, RAM, predecoded
    /// lines with their generation counters, and the compiled superblock
    /// cache — into a cheaply-cloneable [`WarmImage`]. The shared-cache
    /// attachment is not captured (see [`crate::warm`]).
    pub fn snapshot(&self) -> WarmImage {
        WarmImage {
            state: Arc::new(WarmState {
                regs: self.regs,
                pc: self.pc,
                cycles: self.cycles,
                instructions: self.instructions,
                mscratch: self.mscratch,
                pq: self.pq.clone(),
                ram: self.ram.clone(),
                engine: self.engine,
                pre: self.cache.snapshot(),
                sb_slot_count: self.sb.slot_count(),
                sb_slots: self.sb.snapshot_slots(),
                sb_stats: self.sb.stats,
            }),
        }
    }

    /// Reset this CPU to the exact state captured in `image`, reusing its
    /// allocations where shapes match (the warm-sweep hot path: a RAM
    /// `memcpy` plus sparse cache copies instead of a full rebuild). RAM,
    /// the predecode table (including generation counters) and every
    /// superblock slot are replaced together, so no stale derived state
    /// survives. The shared-cache attachment is left as-is.
    pub fn restore(&mut self, image: &WarmImage) {
        let state = &*image.state;
        self.regs = state.regs;
        self.pc = state.pc;
        self.cycles = state.cycles;
        self.instructions = state.instructions;
        self.mscratch = state.mscratch;
        self.pq = state.pq.clone();
        if self.ram.len() == state.ram.len() {
            self.ram.copy_from_slice(&state.ram);
        } else {
            self.ram = state.ram.clone();
        }
        self.engine = state.engine;
        self.cache.restore(&state.pre);
        self.sb
            .restore_slots(state.sb_slot_count, &state.sb_slots, state.sb_stats);
        // Chain links are process-local and reference blocks the restore
        // just replaced: sever and drop them all. Restored blocks re-link
        // lazily on their next dispatch.
        self.jit.chain.clear();
        self.jit.pending = None;
    }

    /// Build a fresh CPU from a [`WarmImage`] (see [`Cpu::restore`]).
    pub fn from_image(image: &WarmImage) -> Self {
        let mut cpu = Self::new(image.state.ram.len());
        cpu.restore(image);
        cpu
    }

    /// Select the execution engine (default: [`Engine::Superblock`]).
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The currently selected execution engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Compatibility selector predating [`Engine`]: `true` picks the
    /// predecoded single-instruction engine, `false` the classic
    /// decode-every-step oracle. (The superblock engine is the default;
    /// use [`Cpu::set_engine`] to return to it.)
    pub fn set_predecode(&mut self, enabled: bool) {
        self.engine = if enabled {
            Engine::Predecode
        } else {
            Engine::Classic
        };
    }

    /// Whether a predecode-backed fast engine (predecoded or superblock)
    /// is selected.
    pub fn predecode_enabled(&self) -> bool {
        self.engine != Engine::Classic
    }

    /// Predecode-cache lifetime counters: `(lines_filled, lines_invalidated)`.
    pub fn predecode_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Superblock-engine lifetime counters.
    pub fn superblock_stats(&self) -> SuperblockStats {
        self.sb.stats
    }

    /// JIT-tier lifetime counters (all zero unless [`Engine::Jit`] ran).
    pub fn jit_stats(&self) -> JitStats {
        self.jit.snapshot()
    }

    /// Enable or disable JIT block chaining (default: enabled).
    ///
    /// Disabling severs every installed link and stops installing new
    /// ones; translations and every other JIT mechanism are untouched, so
    /// this isolates exactly the chaining win — `iss_bench` uses it to
    /// measure the unchained baseline, and it doubles as an operational
    /// kill-switch alongside [`Cpu::force_jit_fallback`].
    pub fn set_jit_chaining(&mut self, enabled: bool) {
        self.jit.chain_enabled = enabled;
        if !enabled {
            self.jit.pending = None;
            self.jit.chain.unlink_all();
        }
    }

    /// Force [`Engine::Jit`] to behave exactly like an unsupported host:
    /// every run degrades to the superblock interpreter (counted in
    /// [`JitStats::fallbacks`]). For tests and operational kill-switches.
    pub fn force_jit_fallback(&mut self, forced: bool) {
        self.jit.forced_off = forced;
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Set the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Read register `x<i>`.
    pub fn reg(&self, i: usize) -> u32 {
        self.regs[i]
    }

    /// Write register `x<i>` (writes to x0 are ignored).
    pub fn set_reg(&mut self, i: usize, value: u32) {
        if i != 0 {
            self.regs[i] = value;
        }
    }

    /// Hot-path register read: the decoder guarantees indices are 5-bit,
    /// but a predecoded index is a `u8` loaded from the slot table, so
    /// mask to elide the bounds check the optimizer cannot prove away.
    #[inline(always)]
    fn rreg(&self, i: u8) -> u32 {
        self.regs[usize::from(i) & 31]
    }

    /// Hot-path register write (x0 stays hardwired to zero).
    #[inline(always)]
    fn wreg(&mut self, i: u8, value: u32) {
        if i != 0 {
            self.regs[usize::from(i) & 31] = value;
        }
    }

    /// Modelled cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The PQ-ALU device (inspect accelerator state in tests).
    pub fn pq(&self) -> &PqAlu {
        &self.pq
    }

    /// Load 32-bit words at a byte address (little endian).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds RAM.
    pub fn load_words(&mut self, addr: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            let a = addr as usize + 4 * i;
            self.ram[a..a + 4].copy_from_slice(&w.to_le_bytes());
        }
        if self.cache.invalidate(addr, 4 * words.len()) {
            self.jit.chain.sweep_stale(&self.cache);
        }
    }

    /// Write bytes into RAM.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds RAM.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        let a = addr as usize;
        self.ram[a..a + bytes.len()].copy_from_slice(bytes);
        if self.cache.invalidate(addr, bytes.len()) {
            self.jit.chain.sweep_stale(&self.cache);
        }
    }

    /// Read bytes from RAM.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds RAM.
    pub fn read_bytes(&self, addr: u32, len: usize) -> &[u8] {
        &self.ram[addr as usize..addr as usize + len]
    }

    fn load(&self, pc: u32, addr: u32, size: usize) -> Result<u32, Trap> {
        let a = addr as usize;
        if a + size > self.ram.len() {
            return Err(Trap::MemoryFault { pc, addr });
        }
        let mut v = 0u32;
        for i in 0..size {
            v |= u32::from(self.ram[a + i]) << (8 * i);
        }
        Ok(v)
    }

    fn store(&mut self, pc: u32, addr: u32, size: usize, value: u32) -> Result<(), Trap> {
        let a = addr as usize;
        if a + size > self.ram.len() {
            return Err(Trap::MemoryFault { pc, addr });
        }
        for i in 0..size {
            self.ram[a + i] = (value >> (8 * i)) as u8;
        }
        // Keep the predecode cache coherent: the store may have rewritten
        // code (self-modifying programs are legal on the slow path too).
        // A generation bump also severs any chain links into now-stale
        // translated blocks (see `crate::jit`'s unlink protocol).
        if self.cache.invalidate(addr, size) {
            self.jit.chain.sweep_stale(&self.cache);
        }
        Ok(())
    }

    /// Width/extension dispatch for loads, shared by all engines so every
    /// path produces identical values and trap PCs.
    #[inline(always)]
    fn load_value(&self, pc: u32, op: LoadOp, addr: u32) -> Result<u32, Trap> {
        Ok(match op {
            LoadOp::Byte => self.load(pc, addr, 1)? as i8 as i32 as u32,
            LoadOp::Half => self.load(pc, addr, 2)? as i16 as i32 as u32,
            LoadOp::Word => self.load(pc, addr, 4)?,
            LoadOp::ByteU => self.load(pc, addr, 1)?,
            LoadOp::HalfU => self.load(pc, addr, 2)?,
        })
    }

    /// Width dispatch for stores (see [`Cpu::load_value`]).
    #[inline(always)]
    fn store_value(&mut self, pc: u32, op: StoreOp, addr: u32, value: u32) -> Result<(), Trap> {
        match op {
            StoreOp::Byte => self.store(pc, addr, 1, value),
            StoreOp::Half => self.store(pc, addr, 2, value),
            StoreOp::Word => self.store(pc, addr, 4, value),
        }
    }

    /// Execute one instruction on the decode-every-step slow path.
    /// Returns `Ok(true)` if it was `ecall`.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on decode/memory faults or `ebreak`.
    pub fn step(&mut self) -> Result<bool, Trap> {
        let pc = self.pc;
        let half = self.load(pc, pc, 2)? as u16;
        let (word, len) = if half & 0x3 == 0x3 {
            (self.load(pc, pc, 4)?, 4)
        } else {
            let full =
                decompress(half).map_err(|e| Trap::IllegalInstruction { pc, word: e.word })?;
            (full, 2)
        };
        let inst = decode(word).map_err(|e| Trap::IllegalInstruction { pc, word: e.word })?;
        let mut flight = Flight {
            cycles: self.cycles + 1,
            instructions: self.instructions + 1,
        };
        let outcome = self.execute(pc, word, inst, len, &mut flight);
        self.cycles = flight.cycles;
        self.instructions = flight.instructions;
        match outcome? {
            Some(next_pc) => {
                self.pc = next_pc;
                Ok(false)
            }
            None => {
                self.pc = pc;
                Ok(true)
            }
        }
    }

    /// Execute one instruction through the predecode cache. Architecturally
    /// identical to [`Cpu::step`]; only the fetch/decode machinery differs.
    ///
    /// # Errors
    ///
    /// Returns the same [`Trap`]s as [`Cpu::step`] would at this PC.
    #[inline]
    pub fn step_predecoded(&mut self) -> Result<bool, Trap> {
        let pc = self.pc;
        if pc & 1 != 0 {
            // Odd PCs cannot be keyed to a halfword slot; take the slow
            // path for this instruction (it will fault or decode garbage
            // exactly as the oracle does).
            return self.step();
        }
        let slot = match self.cache.lookup(&self.ram, pc) {
            Some(slot) => slot,
            // Beyond RAM entirely: the slow path's 2-byte fetch faults.
            None => return Err(Trap::MemoryFault { pc, addr: pc }),
        };
        match slot {
            Slot::Inst { inst, word, len } => {
                let mut flight = Flight {
                    cycles: self.cycles + 1,
                    instructions: self.instructions + 1,
                };
                let outcome = self.execute(pc, word, inst, u32::from(len), &mut flight);
                self.cycles = flight.cycles;
                self.instructions = flight.instructions;
                match outcome? {
                    Some(next_pc) => {
                        self.pc = next_pc;
                        Ok(false)
                    }
                    None => {
                        self.pc = pc;
                        Ok(true)
                    }
                }
            }
            Slot::Trap(trap) => Err(trap),
            Slot::Empty => unreachable!("lookup never returns Empty"),
        }
    }

    /// The shared execution core: retire `inst` fetched at `pc`.
    /// `word` is the raw (decompressed) encoding, used only for trap values.
    ///
    /// Returns `Ok(Some(next_pc))`, or `Ok(None)` for a clean `ecall` exit.
    /// The in-flight counters (already incremented for this instruction)
    /// live in `flight` so the batched fast loop can keep them in registers
    /// across iterations; CSR reads observe them, not the stale fields.
    #[inline]
    fn execute(
        &mut self,
        pc: u32,
        word: u32,
        inst: Inst,
        len: u32,
        flight: &mut Flight,
    ) -> Result<Option<u32>, Trap> {
        let mut next_pc = pc.wrapping_add(len);

        match inst {
            Inst::Lui { rd, imm } => self.wreg(rd, imm as u32),
            Inst::Auipc { rd, imm } => self.wreg(rd, pc.wrapping_add(imm as u32)),
            Inst::Jal { rd, offset } => {
                self.wreg(rd, next_pc);
                next_pc = pc.wrapping_add(offset as u32);
                flight.cycles += 2;
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = self.rreg(rs1).wrapping_add(offset as u32) & !1;
                self.wreg(rd, next_pc);
                next_pc = target;
                flight.cycles += 2;
            }
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.rreg(rs1);
                let b = self.rreg(rs2);
                if branch_taken(op, a, b) {
                    next_pc = pc.wrapping_add(offset as u32);
                    flight.cycles += 2;
                }
            }
            Inst::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.rreg(rs1).wrapping_add(offset as u32);
                let value = self.load_value(pc, op, addr)?;
                self.wreg(rd, value);
                flight.cycles += 1; // load-use stall
            }
            Inst::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let addr = self.rreg(rs1).wrapping_add(offset as u32);
                let value = self.rreg(rs2);
                self.store_value(pc, op, addr, value)?;
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let a = self.rreg(rs1);
                let v = alu(op, a, imm as u32, &mut flight.cycles);
                self.wreg(rd, v);
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let a = self.rreg(rs1);
                let b = self.rreg(rs2);
                let v = alu(op, a, b, &mut flight.cycles);
                self.wreg(rd, v);
            }
            Inst::Fence => {}
            Inst::Ecall => {
                return Ok(None);
            }
            Inst::Ebreak => return Err(Trap::Breakpoint { pc }),
            Inst::Csr { op, rd, rs1, csr } => {
                // Read the old value (cycle/instret expose the core's own
                // performance counters, as used by the paper's on-core
                // measurements; mscratch is a scratch register).
                let old = match csr {
                    0xc00 => flight.cycles as u32,         // cycle
                    0xc80 => (flight.cycles >> 32) as u32, // cycleh
                    0xc02 => flight.instructions as u32,   // instret
                    0xc82 => (flight.instructions >> 32) as u32,
                    0x340 => self.mscratch,
                    _ => {
                        return Err(Trap::IllegalInstruction { pc, word });
                    }
                };
                let operand = self.rreg(rs1);
                let new = match op {
                    CsrOp::Rw => Some(operand),
                    CsrOp::Rs if rs1 != 0 => Some(old | operand),
                    CsrOp::Rc if rs1 != 0 => Some(old & !operand),
                    _ => None,
                };
                if let Some(value) = new {
                    match csr {
                        0x340 => self.mscratch = value,
                        // Performance counters are read-only.
                        _ => return Err(Trap::IllegalInstruction { pc, word }),
                    }
                }
                self.wreg(rd, old);
            }
            Inst::Pq { unit, rd, rs1, rs2 } => {
                let a = self.rreg(rs1);
                let b = self.rreg(rs2);
                let (value, stall) = match unit {
                    PqUnit::MulTer => self.pq.mul_ter(a, b),
                    PqUnit::MulChien => self.pq.mul_chien(a, b),
                    PqUnit::Sha256 => self.pq.sha256(a, b),
                    PqUnit::ModQ => self.pq.modq(a, b),
                };
                self.wreg(rd, value);
                flight.cycles += stall;
            }
        }

        Ok(Some(next_pc))
    }

    /// Run until `ecall`, a trap, or `max_instructions` retired.
    ///
    /// Dispatches through the selected [`Engine`] (default:
    /// [`Engine::Superblock`]); all engines report identical
    /// [`ExitState`]s and [`Trap`]s, including the fuel accounting of
    /// [`Trap::OutOfFuel`] (the instruction budget is checked before every
    /// retired instruction on every path).
    ///
    /// # Errors
    ///
    /// Returns the stopping [`Trap`] (including [`Trap::OutOfFuel`]).
    pub fn run(&mut self, max_instructions: u64) -> Result<ExitState, Trap> {
        match self.engine {
            Engine::Classic => self.run_slow(max_instructions),
            Engine::Predecode => self.run_predecoded(max_instructions),
            Engine::Superblock => self.run_blocks(max_instructions, false),
            Engine::Jit => {
                if self.jit.usable() {
                    self.run_blocks(max_instructions, true)
                } else {
                    // Unsupported host, broken exec mapping, or a forced
                    // fallback: degrade to the superblock interpreter.
                    self.jit.stats.fallbacks += 1;
                    self.run_blocks(max_instructions, false)
                }
            }
        }
    }

    /// The decode-every-step loop behind [`Cpu::run`] (the oracle).
    fn run_slow(&mut self, max_instructions: u64) -> Result<ExitState, Trap> {
        let start = self.instructions;
        while self.instructions - start < max_instructions {
            if self.step()? {
                return Ok(self.exit_state());
            }
        }
        Err(Trap::OutOfFuel)
    }

    /// The batched fast loop behind [`Cpu::run`]: dispatch from the
    /// predecode cache with the PC, fuel and in-flight counters held in
    /// locals, syncing them back to the architectural fields only at loop
    /// exits (ecall, trap, fuel exhaustion, odd-PC fallback). The per-
    /// instruction accounting order matches [`Cpu::step`] exactly: fuel is
    /// checked first, counters increment only after a successful decode,
    /// and a trapping instruction leaves the PC at the faulting address.
    fn run_predecoded(&mut self, max_instructions: u64) -> Result<ExitState, Trap> {
        if self.pc & 1 != 0 {
            // An odd PC cannot be keyed to a halfword slot, and an even
            // successor can only arise through a jump the oracle handles
            // identically — so run the whole budget on the oracle. (Jump
            // and branch targets are even by encoding and `jalr` clears
            // bit 0, hence inside the loop below the PC stays even.)
            return self.run_slow(max_instructions);
        }
        let mut fuel = max_instructions;
        let mut pc = self.pc;
        let mut flight = Flight {
            cycles: self.cycles,
            instructions: self.instructions,
        };
        macro_rules! sync {
            () => {
                self.pc = pc;
                self.cycles = flight.cycles;
                self.instructions = flight.instructions;
            };
        }
        loop {
            if fuel == 0 {
                sync!();
                return Err(Trap::OutOfFuel);
            }
            fuel -= 1;
            let mut slot = self.cache.slot_at(pc);
            if let Slot::Empty = slot {
                slot = match self.cache.fill(&self.ram, pc) {
                    Some(slot) => slot,
                    // Beyond RAM entirely: the slow path's 2-byte fetch
                    // faults.
                    None => {
                        sync!();
                        return Err(Trap::MemoryFault { pc, addr: pc });
                    }
                };
            }
            match slot {
                Slot::Inst { inst, word, len } => {
                    flight.cycles += 1;
                    flight.instructions += 1;
                    match self.execute(pc, word, inst, u32::from(len), &mut flight) {
                        Ok(Some(next_pc)) => pc = next_pc,
                        Ok(None) => {
                            sync!();
                            return Ok(self.exit_state());
                        }
                        Err(trap) => {
                            sync!();
                            return Err(trap);
                        }
                    }
                }
                Slot::Trap(trap) => {
                    sync!();
                    return Err(trap);
                }
                Slot::Empty => unreachable!("lookup never returns Empty"),
            }
        }
    }

    /// The trace-cached dispatch loop behind [`Cpu::run`] for
    /// [`Engine::Superblock`] and [`Engine::Jit`]. Hot block heads execute
    /// as compiled superblocks (one fuel/counter update per block); cold or
    /// fuel-starved stretches interpret single instructions from the
    /// predecode cache exactly like [`Cpu::run_predecoded`], stopping at
    /// block boundaries so heads accumulate heat. With `use_jit` set,
    /// dispatched blocks additionally carry emitted host code and retire
    /// through [`Cpu::exec_jit_block`]; everything else — hotness,
    /// generation validation, fuel, trap accounting — is byte-for-byte the
    /// same loop, which is what makes the tiers bit-identical.
    fn run_blocks(&mut self, max_instructions: u64, use_jit: bool) -> Result<ExitState, Trap> {
        if self.pc & 1 != 0 {
            // Same argument as `run_predecoded`: an odd entry PC runs the
            // whole budget on the oracle; inside the loop PCs stay even.
            return self.run_slow(max_instructions);
        }
        let mut fuel = max_instructions;
        let mut pc = self.pc;
        let mut flight = Flight {
            cycles: self.cycles,
            instructions: self.instructions,
        };
        macro_rules! sync {
            () => {
                self.pc = pc;
                self.cycles = flight.cycles;
                self.instructions = flight.instructions;
            };
        }
        'dispatch: loop {
            if fuel == 0 {
                sync!();
                return Err(Trap::OutOfFuel);
            }
            // A link request rides only from one `EXIT_NEXT` to the very
            // next dispatch-loop iteration: nothing executes in that
            // window, so the requesting block's slot is provably
            // unchanged and the edge still means what the emitted code
            // thinks it means. Anything older is discarded.
            let pending_link = self.jit.pending.take();
            // Probe the trace cache at this head.
            let idx = self.sb.index(pc);
            let mut evicted: Option<Box<CachedBlock>> = None;
            let mut block = {
                let slot = self.sb.slot_mut(idx);
                if slot.tag == pc {
                    match slot.block.take() {
                        Some(block) => Some(block),
                        None => {
                            slot.heat = slot.heat.saturating_add(1);
                            None
                        }
                    }
                } else {
                    // A new head claims the slot (direct-mapped: the
                    // previous tenant's heat and block are dropped).
                    evicted = std::mem::replace(
                        slot,
                        BlockSlot {
                            tag: pc,
                            heat: 1,
                            block: None,
                        },
                    )
                    .block;
                    None
                }
            };
            if let Some(old) = evicted {
                // Eviction is a dispatch-loop safe point: drop the
                // tenant, then sever and reclaim its chain node so no
                // link can reach the dead translation.
                let had_node = old.chain_node().is_some();
                drop(old);
                if had_node {
                    self.jit.chain.gc();
                }
            }
            if let Some(b) = &block {
                if !b.lines_current(&self.cache) {
                    // Code under the block changed since compilation;
                    // recompile right away (the head is already hot).
                    let had_node = b.chain_node().is_some();
                    block = None;
                    self.sb.stats.stale_drops += 1;
                    self.sb.slot_mut(idx).heat = HOT_THRESHOLD;
                    if had_node {
                        self.jit.chain.gc();
                    }
                }
            }
            if block.is_none() && self.shared.is_some() {
                // Probe the process-wide pool when the head is fresh (a
                // warmed sibling likely compiled it already) or locally
                // hot (incl. stale drops: the byte compare below rejects
                // versions the store outdated). Lukewarm misses skip the
                // map lock entirely.
                let heat = self.sb.slot_mut(idx).heat;
                if heat == 1 || heat >= HOT_THRESHOLD {
                    block = self.install_shared(pc).map(Box::new);
                }
            }
            if block.is_none() && self.sb.slot_mut(idx).heat >= HOT_THRESHOLD {
                match superblock::compile(&mut self.cache, &self.ram, pc) {
                    Some(b) => {
                        self.sb.stats.compiles += 1;
                        self.publish_shared(pc, &b);
                        block = Some(Box::new(b));
                    }
                    // The head slot holds no decodable instruction: let
                    // the interpreted stretch raise the exact trap, and
                    // stop re-probing a head that cannot compile.
                    None => self.sb.slot_mut(idx).heat = 0,
                }
            }
            if let Some(mut b) = block {
                if fuel >= b.block.total_instrs {
                    self.sb.stats.dispatches += 1;
                    let jit_ready = use_jit && !self.jit.broken && {
                        if b.jit_code().is_none() {
                            self.ensure_jit(&mut b);
                        }
                        b.jit_code().is_some()
                    };
                    if jit_ready && b.chain_node().is_none() {
                        // Emitted code reads `ctx.node` on every static
                        // exit, so each JIT-dispatched block carries a
                        // chain node. Clones adopted from warm images or
                        // the shared pool arrive without one — links are
                        // process-local, only translations are shared.
                        let code = Arc::clone(b.jit_code().expect("jit_ready checked"));
                        let node = jit::ChainNode::new(pc, &b.block, &code, b.lines());
                        self.jit.chain.register(Arc::clone(&node));
                        b.set_chain(node);
                    }
                    if let Some(link) = pending_link {
                        if jit_ready && self.jit.chain_enabled && link.to_pc == pc {
                            // This dispatch *is* the requested target, so
                            // the target node is translated and
                            // line-current; install the edge so the next
                            // trip through the source block chains here
                            // without leaving host code.
                            let to = Arc::clone(b.chain_node().expect("node created above"));
                            let from = if link.from_pc == pc {
                                // Self-loop: the source block is the one
                                // in hand (its slot is empty right now).
                                Some(Arc::clone(&to))
                            } else {
                                let fidx = self.sb.index(link.from_pc);
                                let fslot = self.sb.slot_mut(fidx);
                                if fslot.tag == link.from_pc {
                                    fslot.block.as_ref().and_then(|fb| fb.chain_node()).cloned()
                                } else {
                                    None
                                }
                            };
                            if let Some(from) = from {
                                debug_assert_eq!(from.head_pc(), link.from_pc);
                                self.jit.chain.install(&from, link.edge, &to);
                            }
                        }
                    }
                    let retired_before = flight.instructions;
                    let outcome = if jit_ready {
                        self.jit.stats.dispatches += 1;
                        self.exec_jit_block(&b, &mut pc, &mut flight, fuel)
                    } else {
                        self.exec_block(&b, &mut pc, &mut flight)
                    };
                    self.sb.slot_mut(idx).block = Some(b);
                    match outcome {
                        Ok(BlockExit::Continue) => {
                            fuel -= flight.instructions - retired_before;
                            continue 'dispatch;
                        }
                        Ok(BlockExit::Ecall) => {
                            sync!();
                            return Ok(self.exit_state());
                        }
                        Err(trap) => {
                            sync!();
                            return Err(trap);
                        }
                    }
                }
                // Not enough fuel for a whole block: put it back and
                // interpret below, where fuel is checked per instruction.
                self.sb.slot_mut(idx).block = Some(b);
            }
            // Cold (or fuel-starved) stretch: interpret from the predecode
            // cache until a block boundary retires, then re-probe.
            let mut steps = 0usize;
            loop {
                if fuel == 0 {
                    sync!();
                    return Err(Trap::OutOfFuel);
                }
                fuel -= 1;
                let mut slot = self.cache.slot_at(pc);
                if let Slot::Empty = slot {
                    slot = match self.cache.fill(&self.ram, pc) {
                        Some(slot) => slot,
                        // Beyond RAM entirely: the slow path's 2-byte
                        // fetch faults.
                        None => {
                            sync!();
                            return Err(Trap::MemoryFault { pc, addr: pc });
                        }
                    };
                }
                match slot {
                    Slot::Inst { inst, word, len } => {
                        let boundary = superblock::ends_block(&inst);
                        flight.cycles += 1;
                        flight.instructions += 1;
                        match self.execute(pc, word, inst, u32::from(len), &mut flight) {
                            Ok(Some(next_pc)) => {
                                pc = next_pc;
                                if boundary {
                                    continue 'dispatch;
                                }
                            }
                            Ok(None) => {
                                sync!();
                                return Ok(self.exit_state());
                            }
                            Err(trap) => {
                                sync!();
                                return Err(trap);
                            }
                        }
                        steps += 1;
                        if steps >= MAX_OPS {
                            continue 'dispatch;
                        }
                    }
                    Slot::Trap(trap) => {
                        sync!();
                        return Err(trap);
                    }
                    Slot::Empty => unreachable!("fill never returns Empty"),
                }
            }
        }
    }

    /// Try to adopt a block for head `pc` from the attached shared cache.
    /// On a byte-validated hit, every predecode line covering the block's
    /// code span is filled (fill-before-recording: stores only bump the
    /// generations of *filled* lines, so recording an unfilled line's
    /// generation would miss a later invalidation) and the entry is
    /// wrapped with this CPU's own `(line, generation)` pairs.
    #[cold]
    fn install_shared(&mut self, pc: u32) -> Option<CachedBlock> {
        let shared = self.shared.as_ref()?;
        let block = shared.lookup(pc, &self.ram)?;
        let mut lines = [(0u32, 0u64); MAX_LINES];
        let mut count = 0usize;
        let first = pc >> LINE_SHIFT;
        let last = block.end_pc.wrapping_sub(1) >> LINE_SHIFT;
        for line in first..=last {
            if !self.cache.line_is_filled(line as usize) {
                // Any PC inside the line fills the whole line; the span
                // is in RAM (the byte compare just read it).
                self.cache.fill(&self.ram, line << LINE_SHIFT);
            }
            debug_assert!(count < MAX_LINES, "shared block spans too many lines");
            lines[count] = (line, self.cache.line_gen(line as usize));
            count += 1;
        }
        self.sb.stats.shared_installs += 1;
        Some(CachedBlock::from_lines(block, &lines[..count]))
    }

    /// Publish a locally-compiled block to the attached shared cache,
    /// together with the code bytes it was compiled from.
    fn publish_shared(&mut self, pc: u32, cached: &CachedBlock) {
        let Some(shared) = &self.shared else { return };
        let (start, end) = (pc as usize, cached.block.end_pc as usize);
        if start < end
            && end <= self.ram.len()
            && shared.publish(pc, &self.ram[start..end], &cached.block)
        {
            self.sb.stats.shared_publishes += 1;
        }
    }

    /// Attach emitted host code to `cached`, adopting a shared translation
    /// when the attached [`SharedTraceCache`] holds one for the same
    /// `Arc<Block>` (zero-compile warm starts), otherwise emitting locally
    /// and publishing. A failed exec-buffer mapping latches the JIT broken
    /// for this CPU — every later dispatch interprets, counted once as a
    /// fallback.
    #[cold]
    fn ensure_jit(&mut self, cached: &mut CachedBlock) {
        if let Some(shared) = &self.shared {
            if let Some(code) = shared.jit_lookup(&cached.block) {
                self.jit.stats.shared_installs += 1;
                cached.set_jit(code);
                return;
            }
        }
        match jit::translate(&cached.block) {
            Some(code) => {
                self.jit.stats.compiles += 1;
                let code = Arc::new(code);
                if let Some(shared) = &self.shared {
                    if shared.jit_publish(&cached.block, &code) {
                        self.jit.stats.shared_publishes += 1;
                    }
                }
                cached.set_jit(code);
            }
            None => {
                self.jit.stats.fallbacks += 1;
                self.jit.broken = true;
            }
        }
    }

    /// Execute one compiled superblock — and any chain of statically
    /// linked successors — through emitted host code. Architecturally
    /// identical to running the same blocks through [`Cpu::exec_block`]
    /// back to back: the same entry preconditions (fuel for a whole block
    /// is re-checked in host code at every chain edge), and on every exit
    /// the counters and `*pc_io` hold exactly what the oracle would
    /// report. The emitted code mutates the register file, RAM, predecode
    /// generations, PQ device and the live cycle/instruction counters in
    /// place; this wrapper only settles partial-exit accounting from the
    /// exit protocol (see [`crate::jit`]). Partial exits resolve prefix
    /// sums against `ctx.node` — the block that was actually executing,
    /// which after chaining need not be `cached`.
    fn exec_jit_block(
        &mut self,
        cached: &CachedBlock,
        pc_io: &mut u32,
        flight: &mut Flight,
        fuel: u64,
    ) -> Result<BlockExit, Trap> {
        let node = Arc::clone(cached.chain_node().expect("jit dispatch registers a node"));
        let mut ctx = JitCtx {
            regs: self.regs.as_mut_ptr(),
            ram: self.ram.as_mut_ptr(),
            ram_len: self.ram.len() as u64,
            dyn_cycles: 0,
            lines: node.lines_ptr(),
            lines_len: node.lines_len(),
            cycles: flight.cycles,
            instructions: flight.instructions,
            // The dispatch precondition already paid for this block;
            // chain edges re-check and charge each successor in host
            // code, mirroring `fuel >= total_instrs` above.
            fuel: fuel - cached.block.total_instrs,
            node: Arc::as_ptr(&node),
            chained: 0,
            next_pc: 0,
            exit_op: 0,
            fault_addr: 0,
            link_edge: jit::LINK_NONE,
            link_from: 0,
            pq: &mut self.pq,
            cache: &mut self.cache,
            chain: &mut self.jit.chain,
        };
        let code = cached.jit_code().expect("dispatched without emitted code");
        // SAFETY: every ctx pointer borrows from `self` (or `node`'s
        // line pairs) and outlives the call; the code was emitted from
        // exactly this block, and the mapping is immutable RX. Chain
        // edges only enter nodes the registry keeps alive (reclaim
        // happens at dispatch-loop safe points, never inside a store
        // helper), and the unlink protocol guarantees they are
        // line-current on entry.
        let exit = unsafe { code.enter(&mut ctx) };
        // Each chained successor is a block dispatch that never returned
        // to Rust; fold it into the same counters the slow tier bumps.
        self.jit.stats.chained_dispatches += ctx.chained;
        self.sb.stats.dispatches += ctx.chained;
        // The block executing at exit time. SAFETY: `ctx.node` is either
        // the entry node (kept alive by the local `node` Arc) or a chain
        // successor the registry still holds.
        let cur = unsafe { &*ctx.node };
        let block = cur.block();
        match exit {
            jit::EXIT_NEXT => {
                // Body and terminator fully retired natively; the live
                // counters were committed in host code at the exit.
                flight.cycles = ctx.cycles;
                flight.instructions = ctx.instructions;
                *pc_io = ctx.next_pc;
                // A static edge missed its link (or failed the fuel
                // check): remember it so the very next dispatch can
                // install the link if it lands on the target.
                self.jit.pending = (self.jit.chain_enabled && ctx.link_edge != jit::LINK_NONE)
                    .then_some(jit::PendingLink {
                        from_pc: ctx.link_from,
                        edge: ctx.link_edge as u8,
                        to_pc: ctx.next_pc,
                    });
                Ok(BlockExit::Continue)
            }
            jit::EXIT_TERM => {
                // Body retired; the terminator (CSR/ecall/ebreak) needs
                // the interpreter core — same as `exec_block`'s tail.
                flight.cycles = ctx.cycles + u64::from(block.body_cycles) + ctx.dyn_cycles;
                flight.instructions = ctx.instructions + u64::from(block.body_instrs);
                let Terminator::Plain { inst, word, len } = block.term else {
                    unreachable!("EXIT_TERM only emitted for plain terminators");
                };
                flight.cycles += 1;
                flight.instructions += 1;
                match self.execute(block.term_pc, word, inst, u32::from(len), flight) {
                    Ok(Some(next_pc)) => {
                        *pc_io = next_pc;
                        Ok(BlockExit::Continue)
                    }
                    Ok(None) => {
                        *pc_io = block.term_pc;
                        Ok(BlockExit::Ecall)
                    }
                    Err(trap) => {
                        *pc_io = block.term_pc;
                        Err(trap)
                    }
                }
            }
            jit::EXIT_TRAP_MEM => {
                // Rebuild the oracle's counters from the faulting op's
                // prefix sums, mirroring `exec_block`'s `partial!` paths.
                let op = &block.ops[ctx.exit_op as usize];
                let (extra_cycles, extra_instrs, at) = match op.kind {
                    // The auipc half retired; the load (second of the
                    // pair) faulted at its own PC.
                    OpKind::AuipcLoad { pc2, .. } => (2, 2, pc2),
                    _ => (1, 1, op.pc),
                };
                flight.cycles =
                    ctx.cycles + u64::from(op.cycles_before) + ctx.dyn_cycles + extra_cycles;
                flight.instructions = ctx.instructions + u64::from(op.instrs_before) + extra_instrs;
                *pc_io = at;
                Err(Trap::MemoryFault {
                    pc: at,
                    addr: ctx.fault_addr,
                })
            }
            jit::EXIT_STORE_STALE => {
                // The store retired but invalidated the running block:
                // stop before the next op, exactly like the interpreter.
                self.sb.stats.store_bails += 1;
                let k = ctx.exit_op as usize;
                let op = &block.ops[k];
                let resume = block.ops.get(k + 1).map_or(block.term_pc, |next| next.pc);
                flight.cycles = ctx.cycles + u64::from(op.cycles_before) + ctx.dyn_cycles + 1;
                flight.instructions = ctx.instructions + u64::from(op.instrs_before) + 1;
                *pc_io = resume;
                Ok(BlockExit::Continue)
            }
            other => unreachable!("unknown jit exit code {other}"),
        }
    }

    /// Execute one compiled superblock. On entry `flight` holds the
    /// counters as of the block head; on any exit they hold exactly what
    /// the oracle would report, and `*pc_io` the PC it would sit at:
    ///
    /// * happy path — the block's static totals (plus dynamic PQ stalls)
    ///   are charged once, the terminator executes on the shared core;
    /// * trap at op `k` — counters rebuilt from the op's prefix sums plus
    ///   the faulting instruction's base cost, PC at the faulting
    ///   instruction (fused pairs charge their completed first half);
    /// * store-invalidation bail — the store retires normally, then the
    ///   block stops *before* the next op and dispatch resumes there, so
    ///   a store into the running block is architecturally invisible.
    fn exec_block(
        &mut self,
        cached: &CachedBlock,
        pc_io: &mut u32,
        flight: &mut Flight,
    ) -> Result<BlockExit, Trap> {
        let block = &*cached.block;
        let entry_cycles = flight.cycles;
        let entry_instrs = flight.instructions;
        // PQ stalls are device-reported at execution time; trap paths
        // fold the accumulator into the static prefix sums.
        let mut dyn_cycles: u64 = 0;
        macro_rules! partial {
            ($op:expr, $extra_cycles:expr, $extra_instrs:expr, $at:expr) => {
                flight.cycles =
                    entry_cycles + u64::from($op.cycles_before) + dyn_cycles + $extra_cycles;
                flight.instructions = entry_instrs + u64::from($op.instrs_before) + $extra_instrs;
                *pc_io = $at;
            };
        }
        for (k, op) in block.ops.iter().enumerate() {
            match op.kind {
                OpKind::LoadImm { rd, value } => self.wreg(rd, value),
                OpKind::Auipc { rd, value } => self.wreg(rd, value),
                OpKind::OpImm { op, rd, rs1, imm } => {
                    // Divider cycles are already in the static prefix
                    // sums; the ALU's dynamic charge goes to a scratch.
                    let mut scratch = 0u64;
                    let v = alu(op, self.rreg(rs1), imm, &mut scratch);
                    self.wreg(rd, v);
                }
                OpKind::Op { op, rd, rs1, rs2 } => {
                    let mut scratch = 0u64;
                    let v = alu(op, self.rreg(rs1), self.rreg(rs2), &mut scratch);
                    self.wreg(rd, v);
                }
                OpKind::Load {
                    op: lop,
                    rd,
                    rs1,
                    offset,
                } => {
                    let addr = self.rreg(rs1).wrapping_add(offset);
                    match self.load_value(op.pc, lop, addr) {
                        Ok(v) => self.wreg(rd, v),
                        Err(trap) => {
                            // The oracle charges the faulting load its
                            // base cycle but no load-use stall.
                            partial!(op, 1, 1, op.pc);
                            return Err(trap);
                        }
                    }
                }
                OpKind::AuipcLoad {
                    op: lop,
                    rd,
                    lrd,
                    addr,
                    value,
                    pc2,
                } => {
                    // The auipc half always retires, even when the load
                    // (the second instruction of the pair) faults.
                    self.wreg(rd, value);
                    match self.load_value(pc2, lop, addr) {
                        Ok(v) => self.wreg(lrd, v),
                        Err(trap) => {
                            partial!(op, 2, 2, pc2);
                            return Err(trap);
                        }
                    }
                }
                OpKind::LoadUse {
                    lop,
                    lrd,
                    lrs1,
                    loffset,
                    aop,
                    ard,
                    ars1,
                    asrc,
                } => {
                    let addr = self.rreg(lrs1).wrapping_add(loffset);
                    match self.load_value(op.pc, lop, addr) {
                        Ok(v) => {
                            self.wreg(lrd, v);
                            let a = self.rreg(ars1);
                            let b = match asrc {
                                Src2::Imm(imm) => imm,
                                Src2::Reg(r) => self.rreg(r),
                            };
                            let mut scratch = 0u64;
                            self.wreg(ard, alu(aop, a, b, &mut scratch));
                        }
                        Err(trap) => {
                            partial!(op, 1, 1, op.pc);
                            return Err(trap);
                        }
                    }
                }
                OpKind::Store {
                    op: sop,
                    rs1,
                    rs2,
                    offset,
                } => {
                    let addr = self.rreg(rs1).wrapping_add(offset);
                    let value = self.rreg(rs2);
                    match self.store_value(op.pc, sop, addr, value) {
                        Ok(()) => {
                            // The store may have rewritten code this very
                            // block was compiled from — bail before the
                            // next (possibly stale) op if so.
                            if !cached.lines_current(&self.cache) {
                                self.sb.stats.store_bails += 1;
                                let resume =
                                    block.ops.get(k + 1).map_or(block.term_pc, |next| next.pc);
                                partial!(op, 1, 1, resume);
                                return Ok(BlockExit::Continue);
                            }
                        }
                        Err(trap) => {
                            partial!(op, 1, 1, op.pc);
                            return Err(trap);
                        }
                    }
                }
                OpKind::Fence => {}
                OpKind::Pq { unit, rd, rs1, rs2 } => {
                    let a = self.rreg(rs1);
                    let b = self.rreg(rs2);
                    let (value, stall) = match unit {
                        PqUnit::MulTer => self.pq.mul_ter(a, b),
                        PqUnit::MulChien => self.pq.mul_chien(a, b),
                        PqUnit::Sha256 => self.pq.sha256(a, b),
                        PqUnit::ModQ => self.pq.modq(a, b),
                    };
                    self.wreg(rd, value);
                    dyn_cycles += stall;
                }
            }
        }
        // Whole body retired: charge its totals once, then terminate.
        flight.cycles = entry_cycles + u64::from(block.body_cycles) + dyn_cycles;
        flight.instructions = entry_instrs + u64::from(block.body_instrs);
        match block.term {
            Terminator::FallThrough => {
                *pc_io = block.term_pc;
                Ok(BlockExit::Continue)
            }
            Terminator::Plain { inst, word, len } => {
                flight.cycles += 1;
                flight.instructions += 1;
                match self.execute(block.term_pc, word, inst, u32::from(len), flight) {
                    Ok(Some(next_pc)) => {
                        *pc_io = next_pc;
                        Ok(BlockExit::Continue)
                    }
                    Ok(None) => {
                        *pc_io = block.term_pc;
                        Ok(BlockExit::Ecall)
                    }
                    Err(trap) => {
                        *pc_io = block.term_pc;
                        Err(trap)
                    }
                }
            }
            Terminator::CmpBranch {
                aop,
                ard,
                ars1,
                asrc,
                bop,
                brs1,
                brs2,
                taken_pc,
                fall_pc,
            } => {
                flight.cycles += 2;
                flight.instructions += 2;
                let a = self.rreg(ars1);
                let b = match asrc {
                    Src2::Imm(imm) => imm,
                    Src2::Reg(r) => self.rreg(r),
                };
                // A fused divider still charges its 34 cycles here (the
                // terminator has no static prefix), so pass the live
                // counter.
                let v = alu(aop, a, b, &mut flight.cycles);
                self.wreg(ard, v);
                let x = self.rreg(brs1);
                let y = self.rreg(brs2);
                *pc_io = if branch_taken(bop, x, y) {
                    flight.cycles += 2;
                    taken_pc
                } else {
                    fall_pc
                };
                Ok(BlockExit::Continue)
            }
        }
    }

    fn exit_state(&self) -> ExitState {
        ExitState {
            regs: self.regs,
            pc: self.pc,
            cycles: self.cycles,
            instructions: self.instructions,
        }
    }
}

/// The branch comparison, shared by the execute core and the fused
/// compare-and-branch terminator.
#[inline(always)]
fn branch_taken(op: BranchOp, a: u32, b: u32) -> bool {
    match op {
        BranchOp::Eq => a == b,
        BranchOp::Ne => a != b,
        BranchOp::Lt => (a as i32) < (b as i32),
        BranchOp::Ge => (a as i32) >= (b as i32),
        BranchOp::Ltu => a < b,
        BranchOp::Geu => a >= b,
    }
}

#[inline(always)]
fn alu(op: AluOp, a: u32, b: u32, cycles: &mut u64) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a << (b & 31),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a >> (b & 31),
        AluOp::Sra => ((a as i32) >> (b & 31)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        AluOp::Mulhsu => (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32,
        AluOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        AluOp::Div => {
            *cycles += 34;
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a
            } else {
                ((a as i32) / (b as i32)) as u32
            }
        }
        AluOp::Divu => {
            *cycles += 34;
            a.checked_div(b).unwrap_or(u32::MAX)
        }
        AluOp::Rem => {
            *cycles += 34;
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32) % (b as i32)) as u32
            }
        }
        AluOp::Remu => {
            *cycles += 34;
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_program(src: &str) -> ExitState {
        let words = assemble(src).unwrap();
        let mut cpu = Cpu::new(1 << 20);
        cpu.load_words(0, &words);
        cpu.run(1_000_000).unwrap()
    }

    #[test]
    fn arithmetic_and_logic() {
        let exit = run_program(
            r#"
                li   t0, 100
                li   t1, 7
                add  a0, t0, t1      # 107
                sub  a1, t0, t1      # 93
                and  a2, t0, t1      # 4
                or   a3, t0, t1      # 103
                xor  a4, t0, t1      # 99
                ecall
            "#,
        );
        assert_eq!(exit.reg(10), 107);
        assert_eq!(exit.reg(11), 93);
        assert_eq!(exit.reg(12), 100 & 7);
        assert_eq!(exit.reg(13), 100 | 7);
        assert_eq!(exit.reg(14), 100 ^ 7);
    }

    #[test]
    fn shifts_and_compares() {
        let exit = run_program(
            r#"
                li   t0, -16
                srai a0, t0, 2       # -4
                srli a1, t0, 28      # 15
                slli a2, t0, 1       # -32
                slti a3, t0, 0       # 1
                sltiu a4, t0, 0      # 0
                ecall
            "#,
        );
        assert_eq!(exit.reg(10) as i32, -4);
        assert_eq!(exit.reg(11), 15);
        assert_eq!(exit.reg(12) as i32, -32);
        assert_eq!(exit.reg(13), 1);
        assert_eq!(exit.reg(14), 0);
    }

    #[test]
    fn m_extension() {
        let exit = run_program(
            r#"
                li   t0, -7
                li   t1, 3
                mul  a0, t0, t1      # -21
                div  a1, t0, t1      # -2 (toward zero)
                rem  a2, t0, t1      # -1
                li   t2, 0
                div  a3, t0, t2      # -1 (div by zero => all ones)
                rem  a4, t0, t2      # dividend
                ecall
            "#,
        );
        assert_eq!(exit.reg(10) as i32, -21);
        assert_eq!(exit.reg(11) as i32, -2);
        assert_eq!(exit.reg(12) as i32, -1);
        assert_eq!(exit.reg(13), u32::MAX);
        assert_eq!(exit.reg(14) as i32, -7);
    }

    #[test]
    fn loads_stores_all_widths() {
        let exit = run_program(
            r#"
                li   t0, 0x1000
                li   t1, -2
                sw   t1, 0(t0)
                lb   a0, 0(t0)       # 0xfe sign-extended = -2
                lbu  a1, 0(t0)       # 0xfe = 254
                lh   a2, 0(t0)       # -2
                lhu  a3, 0(t0)       # 0xfffe
                lw   a4, 0(t0)       # -2
                li   t2, 0x1234
                sh   t2, 8(t0)
                lhu  a5, 8(t0)
                ecall
            "#,
        );
        assert_eq!(exit.reg(10) as i32, -2);
        assert_eq!(exit.reg(11), 254);
        assert_eq!(exit.reg(12) as i32, -2);
        assert_eq!(exit.reg(13), 0xfffe);
        assert_eq!(exit.reg(14) as i32, -2);
        assert_eq!(exit.reg(15), 0x1234);
    }

    #[test]
    fn loops_and_branches() {
        // Sum 1..=10 with a loop.
        let exit = run_program(
            r#"
                li   a0, 0
                li   t0, 1
                li   t1, 11
            loop:
                add  a0, a0, t0
                addi t0, t0, 1
                bne  t0, t1, loop
                ecall
            "#,
        );
        assert_eq!(exit.reg(10), 55);
    }

    #[test]
    fn function_call_and_return() {
        let exit = run_program(
            r#"
                li   a0, 20
                jal  ra, double
                jal  ra, double
                ecall
            double:
                add  a0, a0, a0
                ret
            "#,
        );
        assert_eq!(exit.reg(10), 80);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let exit = run_program(
            r#"
                li   x0, 123
                add  a0, x0, x0
                ecall
            "#,
        );
        assert_eq!(exit.reg(10), 0);
        assert_eq!(exit.reg(0), 0);
    }

    #[test]
    fn taken_branch_costs_more() {
        let taken = run_program(
            r#"
                li t0, 1
                beq t0, t0, skip
                nop
            skip:
                ecall
            "#,
        );
        let not_taken = run_program(
            r#"
                li t0, 1
                beq t0, x0, skip
                nop
            skip:
                ecall
            "#,
        );
        // Same retired instruction count modulo the skipped nop; the taken
        // version pays the flush penalty.
        assert!(taken.cycles >= not_taken.cycles);
    }

    #[test]
    fn memory_fault_traps() {
        let words = assemble("li t0, 0x7fffffff\nlw a0, 0(t0)\necall").unwrap();
        let mut cpu = Cpu::new(1 << 16);
        cpu.load_words(0, &words);
        match cpu.run(100) {
            Err(Trap::MemoryFault { .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut cpu = Cpu::new(1 << 16);
        cpu.load_words(0, &[0xffff_ffff]);
        match cpu.run(10) {
            Err(Trap::IllegalInstruction { .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ebreak_traps() {
        let words = assemble("ebreak").unwrap();
        let mut cpu = Cpu::new(1 << 16);
        cpu.load_words(0, &words);
        assert!(matches!(cpu.run(10), Err(Trap::Breakpoint { pc: 0 })));
    }

    #[test]
    fn rdcycle_measures_elapsed_cycles() {
        // Measure the cost of a div instruction from inside the program.
        let exit = run_program(
            r#"
                rdcycle t0
                li   t1, 100
                li   t2, 7
                div  t3, t1, t2
                rdcycle t1
                sub  a0, t1, t0
                ecall
            "#,
        );
        // 2x li (1 each) + div (1 + 34) + the second rdcycle itself (1).
        assert_eq!(exit.reg(10), 2 + 35 + 1);
    }

    #[test]
    fn rdinstret_counts_instructions() {
        let exit = run_program(
            r#"
                rdinstret t0
                nop
                nop
                nop
                rdinstret t1
                sub  a0, t1, t0
                ecall
            "#,
        );
        assert_eq!(exit.reg(10), 4); // 3 nops + the second rdinstret
    }

    #[test]
    fn mscratch_is_readable_and_writable() {
        let exit = run_program(
            r#"
                li    t0, 0x1234
                csrrw zero, mscratch, t0
                csrr  a0, mscratch
                ecall
            "#,
        );
        assert_eq!(exit.reg(10), 0x1234);
    }

    #[test]
    fn writing_read_only_counter_traps() {
        let words = assemble(
            "li t0, 5
csrrw zero, cycle, t0
ecall",
        )
        .unwrap();
        let mut cpu = Cpu::new(1 << 16);
        cpu.load_words(0, &words);
        assert!(matches!(cpu.run(10), Err(Trap::IllegalInstruction { .. })));
    }

    #[test]
    fn unknown_csr_traps() {
        let words = assemble(
            "csrr a0, 0x7c0
ecall",
        )
        .unwrap();
        let mut cpu = Cpu::new(1 << 16);
        cpu.load_words(0, &words);
        assert!(matches!(cpu.run(10), Err(Trap::IllegalInstruction { .. })));
    }

    #[test]
    fn out_of_fuel() {
        let words = assemble("loop: j loop").unwrap();
        let mut cpu = Cpu::new(1 << 16);
        cpu.load_words(0, &words);
        assert!(matches!(cpu.run(100), Err(Trap::OutOfFuel)));
    }
}
