//! The predecode cache behind the interpreter's fast dispatch path.
//!
//! The slow path ([`crate::cpu::Cpu::step`]) re-fetches, re-decompresses
//! and re-decodes the raw instruction word on every retired instruction,
//! so tight simulated loops spend most of their host time in `decode`.
//! The fast path instead translates code *once*: on the first fetch into a
//! 256-byte line, every 16-bit slot of that line is decoded into a cached
//! [`Slot`] (the [`Inst`], the raw 32-bit word, and the instruction
//! length). Subsequent fetches are a two-index table lookup.
//!
//! Design points, chosen so the fast path is observably identical to the
//! slow path (same architectural state, same modelled cycles, same traps):
//!
//! * **Direct-mapped by PC, tag-free.** The cache has one line slot per
//!   256-byte RAM line, so there are no conflicts and no tags to check on
//!   the hot path.
//! * **Every halfword offset gets its own slot.** RISC-V code can start an
//!   instruction at any even address, and 16- and 32-bit encodings
//!   overlap; decoding each 2-byte offset independently sidesteps all
//!   alignment questions. A 32-bit instruction whose bytes straddle a line
//!   boundary is cached in the line containing its *first* byte.
//! * **Decode errors are cached, not raised.** Predecoding a line may run
//!   the decoder over data or padding that never executes. Such slots
//!   store the exact [`Trap`] the slow path would raise — the trap fires
//!   only if the PC actually reaches the slot.
//! * **Stores invalidate.** A store to byte `a` can rewrite any
//!   instruction starting in `[a - 3, a + size)` (a 32-bit instruction
//!   reaches up to 3 bytes back across a line boundary), so the lines
//!   covering that range are dropped and will be re-decoded on the next
//!   fetch. Self-modifying code therefore behaves exactly as on the slow
//!   path. Host-side writes ([`crate::cpu::Cpu::write_bytes`] /
//!   [`crate::cpu::Cpu::load_words`]) invalidate the same way.

use crate::cpu::Trap;
use crate::inst::{decode, decompress, Inst};

/// Bytes of code covered by one predecode line.
pub const LINE_BYTES: u32 = 256;
const LINE_SHIFT: u32 = LINE_BYTES.trailing_zeros();
/// 16-bit slots per line.
pub const SLOTS_PER_LINE: usize = (LINE_BYTES / 2) as usize;

/// One predecoded 16-bit slot.
#[derive(Debug, Clone, Copy)]
pub enum Slot {
    /// The slot decodes to an instruction: the decoded form, the raw
    /// (decompressed) 32-bit word, and the fetch length in bytes (2 or 4).
    Inst {
        /// Decoded instruction.
        inst: Inst,
        /// Raw 32-bit word (after decompression for 16-bit encodings) —
        /// needed to reproduce the slow path's trap values exactly.
        word: u32,
        /// Encoded length in bytes: 2 (compressed) or 4.
        len: u8,
    },
    /// Fetching or decoding at this PC traps; raised only when executed.
    Trap(Trap),
    /// The covering line has not been decoded (or was invalidated): the
    /// sentinel the hot path keys its refill decision on, so a lookup is
    /// one slot load instead of a bitmap probe plus a slot load.
    Empty,
}

/// The direct-mapped predecode table (see module docs).
///
/// Storage is a single flat `Vec<Slot>` — one 16-byte slot per halfword of
/// RAM — so the hot-path lookup is a single indexed slot load with no
/// pointer chasing; undecoded lines hold [`Slot::Empty`] sentinels. The
/// memory cost is 8× the simulated RAM, paid once per `Cpu`. The `filled`
/// bitmap mirrors line validity for bookkeeping (invalidation scans,
/// stats) but is never consulted on the hot path.
#[derive(Debug)]
pub struct PredecodeCache {
    /// One slot per halfword of covered RAM (line-granular validity).
    slots: Vec<Slot>,
    /// One bit per line: set iff the line's slots are decoded and current.
    filled: Vec<u64>,
    /// Per-line generation counter, bumped every time a *filled* line is
    /// dropped. Consumers that cache derived artifacts keyed on predecoded
    /// code (the superblock engine) record `(line, gen)` pairs at build
    /// time and treat any mismatch as "the code under me may have
    /// changed". Refills do not bump the counter, so a generation value
    /// never aliases back to a pair recorded before the invalidation.
    gens: Vec<u64>,
    /// Number of lines covered.
    line_count: usize,
    /// Conservative inclusive bounds of the filled-line range (`lo > hi`
    /// when nothing is filled). Lets [`PredecodeCache::invalidate`] — on
    /// the hot path of every simulated store — skip the scan for data
    /// stores that cannot touch predecoded code. Invalidation does not
    /// shrink the bounds, so they may over-approximate; that only costs a
    /// redundant scan, never a stale slot.
    filled_lo: usize,
    filled_hi: usize,
    fills: u64,
    invalidations: u64,
}

impl PredecodeCache {
    /// A cache covering `ram_bytes` of RAM (one line slot per 256 bytes).
    pub fn new(ram_bytes: usize) -> Self {
        let line_count = ram_bytes.div_ceil(LINE_BYTES as usize);
        Self {
            slots: vec![Slot::Empty; line_count * SLOTS_PER_LINE],
            filled: vec![0u64; line_count.div_ceil(64)],
            gens: vec![0u64; line_count],
            line_count,
            filled_lo: usize::MAX,
            filled_hi: 0,
            fills: 0,
            invalidations: 0,
        }
    }

    /// Read-only hot-path probe: the slot for `pc` (which must be even).
    /// Returns [`Slot::Empty`] both for undecoded lines and for PCs beyond
    /// RAM coverage — the caller resolves the distinction via
    /// [`PredecodeCache::fill`]. Deliberately takes no RAM reference so
    /// the dispatch loop touches nothing but the slot table on a hit.
    #[inline]
    pub fn slot_at(&self, pc: u32) -> Slot {
        debug_assert_eq!(pc & 1, 0, "predecode slots are halfword-aligned");
        match self.slots.get((pc >> 1) as usize) {
            Some(&slot) => slot,
            None => Slot::Empty,
        }
    }

    /// Look up the slot for `pc` (which must be even), predecoding the
    /// containing line on a miss. Returns `None` when `pc` is beyond the
    /// cache's RAM coverage (the caller raises the fetch fault). Never
    /// returns [`Slot::Empty`].
    #[inline]
    pub fn lookup(&mut self, ram: &[u8], pc: u32) -> Option<Slot> {
        match self.slot_at(pc) {
            Slot::Empty => self.fill(ram, pc),
            slot => Some(slot),
        }
    }

    /// Decode the line covering `pc` into the table (or report
    /// out-of-coverage as `None`). Kept out of line so hit paths stay tiny.
    #[cold]
    pub fn fill(&mut self, ram: &[u8], pc: u32) -> Option<Slot> {
        let line_index = (pc >> LINE_SHIFT) as usize;
        if line_index >= self.line_count {
            return None;
        }
        let base = line_index * SLOTS_PER_LINE;
        let pc_base = (line_index as u32) << LINE_SHIFT;
        for i in 0..SLOTS_PER_LINE {
            self.slots[base + i] = predecode_slot(ram, pc_base + 2 * i as u32);
        }
        self.filled[line_index >> 6] |= 1 << (line_index & 63);
        self.fills += 1;
        self.filled_lo = self.filled_lo.min(line_index);
        self.filled_hi = self.filled_hi.max(line_index);
        Some(self.slots[(pc >> 1) as usize])
    }

    /// Drop every line that could cache an instruction overlapping the
    /// byte range `[addr, addr + size)`. A 32-bit instruction starting up
    /// to 3 bytes before `addr` also overlaps, and it is cached in the
    /// line of its first byte, so the window extends 3 bytes back.
    /// Invalidation rewrites the line's slots to [`Slot::Empty`].
    ///
    /// Returns `true` when at least one generation counter moved — the
    /// signal the JIT chain registry uses to sever links into now-stale
    /// blocks. A window that misses every filled line cannot have staled
    /// anything, so `false` means "nothing to sweep".
    #[inline]
    pub fn invalidate(&mut self, addr: u32, size: usize) -> bool {
        let first = (addr.saturating_sub(3) >> LINE_SHIFT) as usize;
        let last = ((addr as u64 + size.max(1) as u64 - 1) >> LINE_SHIFT) as usize;
        // Data stores rarely overlap predecoded code; skip the scan when
        // the store window misses the filled range entirely.
        if first > self.filled_hi || last < self.filled_lo {
            return false;
        }
        let first = first.max(self.filled_lo);
        let end = self.line_count.min(last + 1).min(self.filled_hi + 1);
        let mut bumped = false;
        for line in first..end {
            if (self.filled[line >> 6] >> (line & 63)) & 1 == 1 {
                self.filled[line >> 6] &= !(1 << (line & 63));
                self.slots[line * SLOTS_PER_LINE..(line + 1) * SLOTS_PER_LINE].fill(Slot::Empty);
                self.gens[line] += 1;
                self.invalidations += 1;
                bumped = true;
            }
        }
        bumped
    }

    /// Drop everything (used when the host rewrites large RAM regions).
    /// Returns `true` when any generation counter moved, exactly as
    /// [`Self::invalidate`] does.
    pub fn invalidate_all(&mut self) -> bool {
        let mut bumped = false;
        for line in 0..self.line_count {
            if (self.filled[line >> 6] >> (line & 63)) & 1 == 1 {
                self.filled[line >> 6] &= !(1 << (line & 63));
                self.slots[line * SLOTS_PER_LINE..(line + 1) * SLOTS_PER_LINE].fill(Slot::Empty);
                self.gens[line] += 1;
                self.invalidations += 1;
                bumped = true;
            }
        }
        self.filled_lo = usize::MAX;
        self.filled_hi = 0;
        bumped
    }

    /// The invalidation generation of `line` (see the `gens` field). Lines
    /// beyond coverage report generation 0, which is also what a block
    /// compiled over them would have recorded — out-of-range code never
    /// goes stale, it simply faults when reached.
    #[inline]
    pub fn line_gen(&self, line: usize) -> u64 {
        self.gens.get(line).copied().unwrap_or(0)
    }

    /// Number of lines currently predecoded.
    pub fn lines_filled(&self) -> usize {
        self.filled.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether `line` is currently filled.
    #[inline]
    pub(crate) fn line_is_filled(&self, line: usize) -> bool {
        (self.filled[line >> 6] >> (line & 63)) & 1 == 1
    }

    /// Lifetime (fills, invalidated-line) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.fills, self.invalidations)
    }

    /// Capture the filled lines, all generation counters and the
    /// bookkeeping counters (see [`crate::warm::WarmImage`]). Sparse in
    /// the filled lines — an idle cache snapshots to almost nothing.
    pub(crate) fn snapshot(&self) -> PredecodeImage {
        let mut lines = Vec::with_capacity(self.lines_filled());
        if self.filled_lo <= self.filled_hi {
            for line in self.filled_lo..=self.filled_hi.min(self.line_count - 1) {
                if self.line_is_filled(line) {
                    let base = line * SLOTS_PER_LINE;
                    lines.push((line as u32, self.slots[base..base + SLOTS_PER_LINE].into()));
                }
            }
        }
        PredecodeImage {
            line_count: self.line_count,
            lines,
            gens: self.gens.clone().into_boxed_slice(),
            filled_lo: self.filled_lo,
            filled_hi: self.filled_hi,
            fills: self.fills,
            invalidations: self.invalidations,
        }
    }

    /// Restore a snapshot taken by [`PredecodeCache::snapshot`]. The
    /// generation counters rewind with everything else; that is sound
    /// because the caller ([`crate::cpu::Cpu::restore`]) replaces RAM, the
    /// slot table and every superblock slot in the same operation, so no
    /// stale derived artifact can survive to observe a rewound generation.
    pub(crate) fn restore(&mut self, image: &PredecodeImage) {
        if self.line_count != image.line_count {
            *self = Self::new(image.line_count * LINE_BYTES as usize);
        } else {
            // Sparse-clear only the currently-filled lines, then zero the
            // bitmap: cheaper than rewriting the whole slot table.
            for (w, word) in self.filled.iter_mut().enumerate() {
                let mut bits = *word;
                while bits != 0 {
                    let line = (w << 6) + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let base = line * SLOTS_PER_LINE;
                    self.slots[base..base + SLOTS_PER_LINE].fill(Slot::Empty);
                }
                *word = 0;
            }
        }
        for (line, slots) in &image.lines {
            let line = *line as usize;
            let base = line * SLOTS_PER_LINE;
            self.slots[base..base + SLOTS_PER_LINE].copy_from_slice(slots);
            self.filled[line >> 6] |= 1 << (line & 63);
        }
        self.gens.copy_from_slice(&image.gens);
        self.filled_lo = image.filled_lo;
        self.filled_hi = image.filled_hi;
        self.fills = image.fills;
        self.invalidations = image.invalidations;
    }
}

/// A point-in-time copy of a [`PredecodeCache`]'s decoded state: the
/// filled lines (sparse), every per-line generation counter, and the
/// bookkeeping counters. Part of [`crate::warm::WarmImage`].
#[derive(Debug, Clone)]
pub(crate) struct PredecodeImage {
    line_count: usize,
    /// `(line_index, that line's slots)` for each filled line.
    lines: Vec<(u32, Box<[Slot]>)>,
    gens: Box<[u64]>,
    filled_lo: usize,
    filled_hi: usize,
    fills: u64,
    invalidations: u64,
}

impl PredecodeImage {
    /// Number of predecoded lines captured.
    pub(crate) fn lines_len(&self) -> usize {
        self.lines.len()
    }
}

/// Decode the single slot at `pc`. Mirrors [`crate::cpu::Cpu::step`]'s
/// fetch sequence exactly, including the trap values it would produce.
fn predecode_slot(ram: &[u8], pc: u32) -> Slot {
    let a = pc as usize;
    if a + 2 > ram.len() {
        return Slot::Trap(Trap::MemoryFault { pc, addr: pc });
    }
    let half = u16::from_le_bytes([ram[a], ram[a + 1]]);
    let (word, len) = if half & 0x3 == 0x3 {
        if a + 4 > ram.len() {
            return Slot::Trap(Trap::MemoryFault { pc, addr: pc });
        }
        (
            u32::from_le_bytes([ram[a], ram[a + 1], ram[a + 2], ram[a + 3]]),
            4u8,
        )
    } else {
        match decompress(half) {
            Ok(word) => (word, 2u8),
            Err(e) => {
                return Slot::Trap(Trap::IllegalInstruction { pc, word: e.word });
            }
        }
    };
    match decode(word) {
        Ok(inst) => Slot::Inst { inst, word, len },
        Err(e) => Slot::Trap(Trap::IllegalInstruction { pc, word: e.word }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ram_with(words: &[u32]) -> Vec<u8> {
        let mut ram = vec![0u8; 1 << 12];
        for (i, w) in words.iter().enumerate() {
            ram[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        ram
    }

    #[test]
    fn lookup_fills_once_and_caches() {
        // addi x1, x0, 5 encodes as 0x00500093.
        let ram = ram_with(&[0x0050_0093]);
        let mut cache = PredecodeCache::new(ram.len());
        assert!(matches!(
            cache.lookup(&ram, 0),
            Some(Slot::Inst { len: 4, .. })
        ));
        assert!(matches!(cache.lookup(&ram, 0), Some(Slot::Inst { .. })));
        assert_eq!(cache.stats().0, 1, "second lookup hits the cached line");
    }

    #[test]
    fn decode_errors_are_cached_not_raised() {
        let ram = ram_with(&[0xffff_ffff]);
        let mut cache = PredecodeCache::new(ram.len());
        match cache.lookup(&ram, 0) {
            Some(Slot::Trap(Trap::IllegalInstruction { pc: 0, word })) => {
                assert_eq!(word, 0xffff_ffff);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn out_of_range_pc_is_none() {
        let ram = ram_with(&[]);
        let mut cache = PredecodeCache::new(ram.len());
        assert!(cache.lookup(&ram, 1 << 20).is_none());
    }

    #[test]
    fn invalidation_reaches_back_across_line_boundaries() {
        let ram = ram_with(&[0x0050_0093; 256]);
        let mut cache = PredecodeCache::new(ram.len());
        // Fill lines 0 and 1.
        cache.lookup(&ram, 0);
        cache.lookup(&ram, LINE_BYTES);
        assert_eq!(cache.lines_filled(), 2);
        // A store 2 bytes into line 1 can rewrite the tail of a 32-bit
        // instruction cached in line 0: both lines must drop.
        cache.invalidate(LINE_BYTES + 2, 1);
        assert_eq!(cache.lines_filled(), 0);
        assert_eq!(cache.stats().1, 2);
    }

    #[test]
    fn invalidation_is_scoped() {
        let ram = ram_with(&[0x0050_0093; 512]);
        let mut cache = PredecodeCache::new(ram.len());
        cache.lookup(&ram, 0);
        cache.lookup(&ram, 4 * LINE_BYTES);
        cache.invalidate(0, 4);
        assert_eq!(cache.lines_filled(), 1, "distant line survives");
        cache.invalidate_all();
        assert_eq!(cache.lines_filled(), 0);
    }

    #[test]
    fn snapshot_restore_round_trips_lines_and_gens() {
        let ram = ram_with(&[0x0050_0093; 512]);
        let mut cache = PredecodeCache::new(ram.len());
        cache.lookup(&ram, 0);
        cache.lookup(&ram, 4 * LINE_BYTES);
        cache.invalidate(0, 1); // bump line 0's gen, drop it
        cache.lookup(&ram, 0); // refill
        let image = cache.snapshot();
        assert_eq!(image.lines_len(), 2);

        // Diverge: drop a line, fill a third, then restore.
        cache.invalidate(4 * LINE_BYTES, 1);
        cache.lookup(&ram, 8 * LINE_BYTES);
        let mut other = PredecodeCache::new(ram.len());
        other.restore(&image);
        cache.restore(&image);
        assert_eq!(cache.lines_filled(), 2);
        assert_eq!(other.lines_filled(), 2);
        assert_eq!(cache.line_gen(0), 1, "generation restored, not reset");
        assert_eq!(other.line_gen(0), 1);
        assert_eq!(cache.stats(), other.stats());
        assert!(matches!(cache.slot_at(0), Slot::Inst { .. }));
        assert!(
            matches!(cache.slot_at(8 * LINE_BYTES), Slot::Empty),
            "post-snapshot fill rolled back"
        );
    }

    #[test]
    fn end_of_ram_slots_trap_like_the_slow_path() {
        let ram = ram_with(&[0x0050_0093]);
        let mut cache = PredecodeCache::new(ram.len());
        let last = ram.len() as u32 - 2;
        // A 32-bit encoding whose tail would run off RAM: zeros decode as
        // a (non-compressed-looking) halfword, so craft one explicitly.
        let mut ram2 = ram.clone();
        let a = last as usize;
        ram2[a] = 0x03; // low bits 11 → 32-bit encoding, but only 2 bytes left
        ram2[a + 1] = 0x00;
        match cache.lookup(&ram2, last) {
            Some(Slot::Trap(Trap::MemoryFault { pc, addr })) => {
                assert_eq!((pc, addr), (last, last));
            }
            other => panic!("{other:?}"),
        }
    }
}
