//! Dynamic binary translation of superblocks to host machine code.
//!
//! The fourth engine tier ([`crate::cpu::Engine::Jit`]): already-compiled
//! [`crate::superblock::Block`]s — pre-resolved register indices, pre-folded
//! immediates, pre-summed cycle/instruction prefixes — are lowered once to
//! host x86-64 machine code in an mmap'd W^X exec buffer and entered through
//! a compact [`JitCtx`] context struct. Everything architectural stays in
//! Rust: the dispatch loop (hotness, fuel, generation validation at block
//! entry), trap reconstruction from the block's prefix sums, and the
//! terminator fallback for CSR/`ecall`/`ebreak` all reuse the superblock
//! engine's machinery, so the JIT is bit-identical to the three interpreter
//! tiers by construction.
//!
//! # Entry/exit protocol
//!
//! Emitted code is one function per block, `extern "C" fn(*mut JitCtx) ->
//! u32`. The context holds raw pointers into the owning
//! [`crate::cpu::Cpu`] (register file, RAM, PQ-ALU device, predecode
//! cache) plus the dispatched block's `(line, generation)` validity pairs;
//! guest registers are mutated in place, exactly as the interpreter would.
//! Retired cycle/instruction totals are committed *in host code*: every
//! fully-retired block adds its prefix-sum totals (plus the taken
//! terminator's extra cycles and any dynamic PQ stalls) to `ctx.cycles` /
//! `ctx.instructions` before leaving, so the counters are already exact
//! when control returns to Rust. The return value selects how the Rust
//! side settles the rest:
//!
//! * [`EXIT_NEXT`] — body and terminator fully retired and charged in
//!   host code; `next_pc` is in the context. If the exit crossed a static
//!   edge whose link slot was empty, `link_from`/`link_edge` name the
//!   edge so the dispatch loop can install the chain link for next time.
//! * [`EXIT_TERM`] — body retired but not yet charged; the terminator
//!   (CSR reads observing live counters, `ecall`, `ebreak`) executes on
//!   the shared interpreter core.
//! * [`EXIT_TRAP_MEM`] — a load/store at op `exit_op` faulted at
//!   `fault_addr`; Rust rebuilds the oracle's counters from the op's
//!   prefix sums and raises the exact trap.
//! * [`EXIT_STORE_STALE`] — the store at op `exit_op` retired but
//!   invalidated one of the block's own predecode lines (self-modifying
//!   code); the block stops before the next op, exactly like the
//!   interpreter's store bail.
//!
//! Because blocks chain (below), the partial-exit codes resolve their
//! prefix sums against the block named by `ctx.node` — the block that was
//! actually executing — not the block Rust dispatched.
//!
//! # Block chaining
//!
//! Each JIT-dispatched block owns a heap-allocated [`ChainNode`] with two
//! function-pointer out-slots (edge 0 = fall-through/static next, edge 1 =
//! taken branch target). A static terminator's epilogue commits the
//! block's totals, then loads the edge's slot: if non-null it checks the
//! remaining fuel budget against the successor's whole-block requirement,
//! charges it, swaps `ctx.node`/`ctx.lines` to the successor and jumps
//! straight to its *chain entry* (past the prologue) — the hot loop never
//! returns to Rust. A null slot (or a fuel shortfall) falls back to
//! [`EXIT_NEXT`], and the dispatch loop installs the link on the way back
//! in, so loops self-link after one trip. Link slots live in ordinary
//! (data) heap memory read indirectly by emitted code — installing or
//! clearing a link never touches an RX page, so the W^X story below is
//! unchanged. Links are process-local (host addresses never leave the
//! CPU that installed them); the shared pool still shares only the
//! translations. The [`ChainRegistry`] keeps every node alive until a
//! Rust-side safe point and severs every slot that could reach a block
//! whose predecode generations moved — see the registry docs for the
//! unlink protocol.
//!
//! # Host-register caching
//!
//! Within a block the emitter pins the three hottest guest registers in
//! callee-saved host registers (`rbp`, `r13`, `r15`), loaded at both
//! entry points and spilled back to the register file on every exit path
//! — including fault/bail stubs and chain edges — so `JitCtx` and the
//! guest register file stay the single source of truth at all four exit
//! codes. Helper calls (div/PQ/store-invalidate) are `extern "C"` and
//! never read the guest register file, so pins survive them without
//! spilling.
//!
//! # W^X discipline
//!
//! The exec buffer is mapped `PROT_READ|PROT_WRITE` (raw `mmap` syscall —
//! the workspace is hermetic, so no libc), filled, then flipped to
//! `PROT_READ|PROT_EXEC` with `mprotect`; it is never writable and
//! executable at the same time. Any mapping or protection failure marks
//! the JIT broken for that CPU and execution degrades to the superblock
//! interpreter — a counted fallback, never a panic.
//!
//! # Fallback
//!
//! [`host_supported`] gates the whole tier: on targets without an emitter
//! (anything but x86-64 Linux) `Engine::Jit` silently runs the superblock
//! engine and counts a fallback in [`JitStats`]. Tests can force the same
//! path on supported hosts with [`crate::cpu::Cpu::force_jit_fallback`].

use crate::pq::PqAlu;
use crate::predecode::PredecodeCache;
use crate::superblock::{Block, MAX_LINES};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod emit_x86_64;

/// Block exit code: body + terminator retired natively (see module docs).
pub(crate) const EXIT_NEXT: u32 = 0;
/// Block exit code: body retired, terminator needs the interpreter core.
pub(crate) const EXIT_TERM: u32 = 1;
/// Block exit code: memory fault at op `exit_op`.
pub(crate) const EXIT_TRAP_MEM: u32 = 2;
/// Block exit code: store at op `exit_op` invalidated the running block.
pub(crate) const EXIT_STORE_STALE: u32 = 3;

/// Whether this build has a JIT emitter for the host. When `false`,
/// [`crate::cpu::Engine::Jit`] degrades to the superblock interpreter at
/// run time (counted in [`JitStats::fallbacks`], never a panic).
pub fn host_supported() -> bool {
    cfg!(all(target_arch = "x86_64", target_os = "linux"))
}

/// Lifetime counters of the JIT tier (see [`crate::cpu::Cpu::jit_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JitStats {
    /// Superblocks lowered to host code by this CPU.
    pub compiles: u64,
    /// Whole-block executions entered through emitted host code from the
    /// Rust dispatch loop.
    pub dispatches: u64,
    /// Whole-block executions entered through a chain link, without
    /// returning to the dispatch loop in between.
    pub chained_dispatches: u64,
    /// Chain links installed into out-slots by the dispatch loop.
    pub links_installed: u64,
    /// Chain links severed (staleness sweeps, eviction GC, restore).
    pub unlinks: u64,
    /// Translations adopted from a shared pool instead of emitted locally.
    pub shared_installs: u64,
    /// Locally-emitted translations published to a shared pool.
    pub shared_publishes: u64,
    /// Times `Engine::Jit` degraded to the superblock interpreter
    /// (unsupported host, exec-buffer failure, or a forced fallback).
    pub fallbacks: u64,
}

/// A link the emitted code asked for on its way out: the dispatch loop
/// installs it at the next dispatch of `to_pc`, once the target is known
/// to be current and translated.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingLink {
    /// Head PC of the block that exited on a null link slot.
    pub(crate) from_pc: u32,
    /// Which out-slot (0 = fall/static next, 1 = taken).
    pub(crate) edge: u8,
    /// The edge's static successor PC.
    pub(crate) to_pc: u32,
}

/// Per-CPU JIT engine state: counters plus the degraded-mode latches.
#[derive(Debug)]
pub(crate) struct JitState {
    pub(crate) stats: JitStats,
    /// Set when an exec-buffer allocation failed; the engine stays on the
    /// interpreter from then on (retrying mmap every block would thrash).
    pub(crate) broken: bool,
    /// Test/ops override: behave exactly like an unsupported host.
    pub(crate) forced_off: bool,
    /// Whether the dispatch loop may install chain links (benchmarks
    /// toggle this to measure the unchained baseline; emitted code is
    /// identical either way — with no links installed every edge takes
    /// the `EXIT_NEXT` path).
    pub(crate) chain_enabled: bool,
    /// Every live chain node of this CPU, plus the link counters.
    pub(crate) chain: ChainRegistry,
    /// Link requested by the last `EXIT_NEXT`, if any.
    pub(crate) pending: Option<PendingLink>,
}

impl Default for JitState {
    fn default() -> Self {
        Self {
            stats: JitStats::default(),
            broken: false,
            forced_off: false,
            chain_enabled: true,
            chain: ChainRegistry::default(),
            pending: None,
        }
    }
}

impl JitState {
    /// Whether emitted code may be used right now.
    pub(crate) fn usable(&self) -> bool {
        host_supported() && !self.broken && !self.forced_off
    }

    /// Counters merged with the registry's link/unlink tallies — the view
    /// [`crate::cpu::Cpu::jit_stats`] reports.
    pub(crate) fn snapshot(&self) -> JitStats {
        JitStats {
            links_installed: self.chain.links_installed,
            unlinks: self.chain.unlinks,
            ..self.stats
        }
    }
}

/// `ctx.link_edge` value meaning "this exit cannot be linked" (dynamic
/// target, terminator fallback, trap).
pub(crate) const LINK_NONE: u32 = u32::MAX;

/// One block's chain identity: the successor link slots plus everything
/// emitted code needs when it is *entered through a link* (whole-block
/// fuel requirement, validity pairs) and the keepalives that make a
/// traversal safe (the node pins both the translation and the block, so
/// a link installed before an eviction can still be followed until the
/// registry severs it at a safe point).
///
/// `repr(C)` with a prefix the emitter hard-codes (see `node_off`,
/// asserted by a unit test). Out-slots hold the *target node's* address;
/// its first field is the chain-entry host address, so a taken link is
/// `node = [slot]; jmp [node]`. Slots are plain data words — clearing one
/// (`unlink`) is a single atomic store, never an RX-page write.
#[derive(Debug)]
#[repr(C)]
pub(crate) struct ChainNode {
    /// Host address of the translation's chain entry (past the prologue).
    entry: usize,
    /// Whole-block fuel requirement (`Block::total_instrs`), checked by
    /// the predecessor's edge code before charging and jumping in.
    total_instrs: u64,
    /// Successor links: 0 = fall-through/static next, 1 = taken. Null =
    /// unlinked (take the `EXIT_NEXT` path).
    out: [AtomicUsize; 2],
    /// Number of valid pairs in `lines`.
    lines_len: u64,
    /// The block's `(line, generation)` validity pairs — `ctx.lines` is
    /// repointed here when a link is taken.
    lines: [(u32, u64); MAX_LINES],
    // --- Rust-only fields below (never addressed by emitted code) ---
    /// Head PC of the block (install-time sanity check).
    head_pc: u32,
    /// Keepalive: the block the prefix sums come from.
    block: Arc<Block>,
    /// Keepalive: the translation `entry` points into.
    _code: Arc<JitCode>,
}

impl ChainNode {
    pub(crate) fn new(
        head_pc: u32,
        block: &Arc<Block>,
        code: &Arc<JitCode>,
        lines: &[(u32, u64)],
    ) -> Arc<Self> {
        let mut pairs = [(0u32, 0u64); MAX_LINES];
        pairs[..lines.len()].copy_from_slice(lines);
        Arc::new(Self {
            entry: code.chain_entry_addr(),
            total_instrs: block.total_instrs,
            out: [AtomicUsize::new(0), AtomicUsize::new(0)],
            lines_len: lines.len() as u64,
            lines: pairs,
            head_pc,
            block: Arc::clone(block),
            _code: Arc::clone(code),
        })
    }

    pub(crate) fn head_pc(&self) -> u32 {
        self.head_pc
    }

    pub(crate) fn block(&self) -> &Block {
        &self.block
    }

    pub(crate) fn lines_ptr(&self) -> *const (u32, u64) {
        self.lines.as_ptr()
    }

    pub(crate) fn lines_len(&self) -> u64 {
        self.lines_len
    }

    fn lines_current(&self, cache: &PredecodeCache) -> bool {
        self.lines[..self.lines_len as usize]
            .iter()
            .all(|&(line, gen)| cache.line_gen(line as usize) == gen)
    }
}

/// Field offsets of the [`ChainNode`] prefix the emitter bakes into
/// addressing modes. Checked against the real layout by a test.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub(crate) mod node_off {
    pub(crate) const ENTRY: u8 = 0x00;
    pub(crate) const TOTAL_INSTRS: u8 = 0x08;
    pub(crate) const OUT: u8 = 0x10;
    pub(crate) const LINES_LEN: u8 = 0x20;
    pub(crate) const LINES: u8 = 0x28;
}

/// All chain nodes a CPU has ever handed to emitted code that are still
/// potentially reachable, plus the link bookkeeping.
///
/// # Unlink protocol
///
/// Exactness requires that a link can never be traversed into stale code.
/// Every path that bumps a predecode generation therefore runs
/// [`ChainRegistry::sweep_stale`] *before* emitted code can take another
/// edge: the in-JIT store helper calls it synchronously when its
/// invalidation bumped a generation, and the interpreter-side store /
/// host-write paths do the same. The sweep only *clears* slots (atomic
/// stores) — it never drops a node, because the node of the currently
/// executing block is always on the list and its translation must not be
/// unmapped mid-run. Nodes are reclaimed by [`ChainRegistry::gc`] at
/// dispatch-loop safe points (slot eviction, stale drops) once nothing
/// but the registry holds them, after severing any slot still pointing at
/// them; [`ChainRegistry::clear`] does the same wholesale on
/// snapshot-restore and engine reset.
#[derive(Debug, Default)]
pub(crate) struct ChainRegistry {
    nodes: Vec<Arc<ChainNode>>,
    /// Links installed (slot went from one target to another).
    pub(crate) links_installed: u64,
    /// Links severed (staleness sweep, eviction GC, restore/reset).
    pub(crate) unlinks: u64,
}

impl ChainRegistry {
    /// Track a node handed to emitted code.
    pub(crate) fn register(&mut self, node: Arc<ChainNode>) {
        self.nodes.push(node);
    }

    /// Point `from`'s out-slot `edge` at `to`'s chain entry.
    pub(crate) fn install(&mut self, from: &ChainNode, edge: u8, to: &Arc<ChainNode>) {
        let Some(slot) = from.out.get(edge as usize) else {
            return;
        };
        let target = Arc::as_ptr(to) as usize;
        if slot.load(Ordering::Relaxed) != target {
            slot.store(target, Ordering::Relaxed);
            self.links_installed += 1;
        }
    }

    /// Sever every link into a node whose predecode generations moved.
    /// Clear-only (safe to call from the in-JIT store helper): no node is
    /// dropped, so currently-executing translations stay mapped.
    pub(crate) fn sweep_stale(&mut self, cache: &PredecodeCache) {
        let stale: Vec<usize> = self
            .nodes
            .iter()
            .filter(|n| !n.lines_current(cache))
            .map(|n| Arc::as_ptr(n) as usize)
            .collect();
        if stale.is_empty() {
            return;
        }
        self.unlinks += Self::clear_slots_into(&self.nodes, &stale);
    }

    /// Reclaim nodes nothing but the registry references (their
    /// `CachedBlock` was evicted or dropped as stale). Severs any slot
    /// still pointing at a dead node first, so a traversal can never
    /// reach freed code. Only called from dispatch-loop safe points —
    /// never while emitted code is on the stack.
    pub(crate) fn gc(&mut self) {
        let dead: Vec<usize> = self
            .nodes
            .iter()
            .filter(|n| Arc::strong_count(n) == 1)
            .map(|n| Arc::as_ptr(n) as usize)
            .collect();
        if dead.is_empty() {
            return;
        }
        self.unlinks += Self::clear_slots_into(&self.nodes, &dead);
        self.nodes.retain(|n| Arc::strong_count(n) > 1);
    }

    /// Sever every link and drop every node (snapshot-restore / reset:
    /// the whole predecode world is being replaced).
    pub(crate) fn clear(&mut self) {
        let mut severed = 0u64;
        for node in &self.nodes {
            for slot in &node.out {
                if slot.swap(0, Ordering::Relaxed) != 0 {
                    severed += 1;
                }
            }
        }
        self.unlinks += severed;
        self.nodes.clear();
    }

    /// Sever every link but keep the nodes (chaining disabled mid-run).
    pub(crate) fn unlink_all(&mut self) {
        let mut severed = 0u64;
        for node in &self.nodes {
            for slot in &node.out {
                if slot.swap(0, Ordering::Relaxed) != 0 {
                    severed += 1;
                }
            }
        }
        self.unlinks += severed;
    }

    fn clear_slots_into(nodes: &[Arc<ChainNode>], targets: &[usize]) -> u64 {
        let mut severed = 0u64;
        for node in nodes {
            for slot in &node.out {
                let p = slot.load(Ordering::Relaxed);
                if p != 0 && targets.contains(&p) {
                    slot.store(0, Ordering::Relaxed);
                    severed += 1;
                }
            }
        }
        severed
    }
}

/// The context struct emitted code executes against. `repr(C)` with a
/// layout the emitter hard-codes (asserted by a unit test): the
/// emitted-addressed prefix fits entirely in disp8 range, the Rust-only
/// tail (device/cache/registry pointers) sits past it. All pointers are
/// borrowed from the owning `Cpu` for the duration of one entry into
/// host code (which may traverse many chained blocks).
#[repr(C)]
pub(crate) struct JitCtx {
    /// Guest register file (`[u32; 32]`), mutated in place.
    pub(crate) regs: *mut u32,
    /// Guest RAM base.
    pub(crate) ram: *mut u8,
    /// Guest RAM length in bytes (bounds checks compare against this).
    pub(crate) ram_len: u64,
    /// Dynamic PQ-ALU stall cycles accumulated by helper calls since the
    /// last commit point (chain edge or `EXIT_NEXT`).
    pub(crate) dyn_cycles: u64,
    /// The *currently executing* block's `(line, generation)` pairs —
    /// repointed at the successor's pairs when a chain link is taken.
    pub(crate) lines: *const (u32, u64),
    /// Number of valid pairs behind `lines`.
    pub(crate) lines_len: u64,
    /// Retired-cycle total, live: seeded from the in-flight counter,
    /// committed per fully-retired block by emitted code.
    pub(crate) cycles: u64,
    /// Retired-instruction total, live (same discipline as `cycles`).
    pub(crate) instructions: u64,
    /// Fuel remaining *after* the current block retires. Chain edges
    /// check/charge the successor's whole-block requirement against this
    /// — the same precondition the dispatch loop applies.
    pub(crate) fuel: u64,
    /// The currently executing block's chain node (swapped on traversal).
    pub(crate) node: *const ChainNode,
    /// Blocks entered through a chain link during this entry.
    pub(crate) chained: u64,
    /// Out: resume PC for [`EXIT_NEXT`].
    pub(crate) next_pc: u32,
    /// Out: index of the op that faulted or bailed.
    pub(crate) exit_op: u32,
    /// Out: faulting data address for [`EXIT_TRAP_MEM`].
    pub(crate) fault_addr: u32,
    /// Out: which out-slot the exit crossed unlinked (0/1), or
    /// [`LINK_NONE`] for dynamic/unlinkable exits.
    pub(crate) link_edge: u32,
    /// Out: head PC of the block that exited (link installation key).
    pub(crate) link_from: u32,
    // --- Rust-only fields below (never addressed by emitted code) ---
    /// The PQ-ALU device (helper calls mutate its state machine).
    pub(crate) pq: *mut PqAlu,
    /// The predecode cache (store helper runs the invalidation).
    pub(crate) cache: *mut PredecodeCache,
    /// The owning CPU's chain registry (store helper sweeps stale links).
    pub(crate) chain: *mut ChainRegistry,
}

/// Field offsets the emitter bakes into addressing modes (one byte each —
/// everything fits a disp8). Checked against the real layout by a test.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub(crate) mod ctx_off {
    pub(crate) const REGS: u8 = 0x00;
    pub(crate) const RAM: u8 = 0x08;
    pub(crate) const RAM_LEN: u8 = 0x10;
    pub(crate) const DYN_CYCLES: u8 = 0x18;
    pub(crate) const LINES: u8 = 0x20;
    pub(crate) const LINES_LEN: u8 = 0x28;
    pub(crate) const CYCLES: u8 = 0x30;
    pub(crate) const INSTRUCTIONS: u8 = 0x38;
    pub(crate) const FUEL: u8 = 0x40;
    pub(crate) const NODE: u8 = 0x48;
    pub(crate) const CHAINED: u8 = 0x50;
    pub(crate) const NEXT_PC: u8 = 0x58;
    pub(crate) const EXIT_OP: u8 = 0x5c;
    pub(crate) const FAULT_ADDR: u8 = 0x60;
    pub(crate) const LINK_EDGE: u8 = 0x64;
    pub(crate) const LINK_FROM: u8 = 0x68;
}

/// RISC-V division semantics for emitted code (edge cases — divide by
/// zero, overflow — match [`crate::cpu`]'s ALU exactly). `sel` is
/// 0=div, 1=divu, 2=rem, 3=remu; divider cycles are charged statically
/// by the block's prefix sums, never here.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
extern "C" fn jit_div(sel: u32, a: u32, b: u32) -> u32 {
    match sel {
        0 => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a
            } else {
                ((a as i32) / (b as i32)) as u32
            }
        }
        1 => a.checked_div(b).unwrap_or(u32::MAX),
        2 => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32) % (b as i32)) as u32
            }
        }
        _ => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

/// PQ-ALU dispatch for emitted code: runs the device (state machine and
/// all), folds the stall into `dyn_cycles`, returns the result value.
/// `unit` is the instruction's funct3 (see [`crate::inst::PqUnit`]).
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
unsafe extern "C" fn jit_pq(ctx: *mut JitCtx, unit: u32, a: u32, b: u32) -> u32 {
    let ctx = &mut *ctx;
    let pq = &mut *ctx.pq;
    let (value, stall) = match unit {
        0 => pq.mul_ter(a, b),
        1 => pq.mul_chien(a, b),
        2 => pq.sha256(a, b),
        _ => pq.modq(a, b),
    };
    ctx.dyn_cycles += stall;
    value
}

/// Post-store coherency for emitted code: run the predecode invalidation
/// (exactly as `Cpu::store` would), sever any chain link that now points
/// at stale code, then re-validate the running block's line generations.
/// Returns 0 if the block is still current, 1 if the store hit its own
/// code and the block must bail before the next op.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
unsafe extern "C" fn jit_store_inval(ctx: *mut JitCtx, addr: u32, size: u32) -> u32 {
    let ctx = &mut *ctx;
    let cache = &mut *ctx.cache;
    if cache.invalidate(addr, size as usize) {
        // A generation moved: no link may chain into the affected blocks
        // again. Clear-only — the running block's own node is on this
        // list and its translation must stay mapped.
        (*ctx.chain).sweep_stale(cache);
    }
    let lines = std::slice::from_raw_parts(ctx.lines, ctx.lines_len as usize);
    let current = lines
        .iter()
        .all(|&(line, gen)| cache.line_gen(line as usize) == gen);
    u32::from(!current)
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod backend {
    use super::emit_x86_64;
    use super::{jit_div, jit_pq, jit_store_inval, JitCtx};
    use crate::superblock::Block;
    use std::fmt;

    const PROT_READ: usize = 1;
    const PROT_WRITE: usize = 2;
    const PROT_EXEC: usize = 4;
    const MAP_PRIVATE_ANON: usize = 0x22; // MAP_PRIVATE | MAP_ANONYMOUS
    const PAGE: usize = 4096;

    /// Raw `mmap(NULL, len, prot, MAP_PRIVATE|MAP_ANONYMOUS, -1, 0)`.
    /// The workspace carries no libc crate, so the three calls the exec
    /// buffer needs go straight to the kernel.
    unsafe fn sys_mmap(len: usize, prot: usize) -> Option<*mut u8> {
        let ret: usize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") 9usize => ret,
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") prot,
            in("r10") MAP_PRIVATE_ANON,
            in("r8") usize::MAX, // fd = -1
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        // Raw syscalls report errors as -errno in [-4095, -1].
        if ret >= -4095isize as usize {
            None
        } else {
            Some(ret as *mut u8)
        }
    }

    unsafe fn sys_mprotect(ptr: *mut u8, len: usize, prot: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") 10isize => ret,
            in("rdi") ptr,
            in("rsi") len,
            in("rdx") prot,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    unsafe fn sys_munmap(ptr: *mut u8, len: usize) {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") 11isize => ret,
            in("rdi") ptr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        let _ = ret;
    }

    /// A page-rounded executable mapping holding one block's emitted code.
    /// Written while `RW`, then flipped to `RX` — never both (W^X).
    struct ExecMap {
        ptr: *mut u8,
        len: usize,
    }

    impl ExecMap {
        fn new(code: &[u8]) -> Option<Self> {
            let len = code.len().max(1).next_multiple_of(PAGE);
            unsafe {
                let ptr = sys_mmap(len, PROT_READ | PROT_WRITE)?;
                std::ptr::copy_nonoverlapping(code.as_ptr(), ptr, code.len());
                if sys_mprotect(ptr, len, PROT_READ | PROT_EXEC) != 0 {
                    sys_munmap(ptr, len);
                    return None;
                }
                Some(Self { ptr, len })
            }
        }
    }

    impl Drop for ExecMap {
        fn drop(&mut self) {
            unsafe { sys_munmap(self.ptr, self.len) };
        }
    }

    /// One block's emitted host code. Immutable (and `RX`) after
    /// construction, so sharing across threads is sound.
    pub(crate) struct JitCode {
        map: ExecMap,
        code_len: usize,
        /// Byte offset of the chain entry (past the prologue, at the pin
        /// loads) — where a predecessor's link jump lands.
        chain_entry: usize,
    }

    // SAFETY: the mapping is read/execute-only after construction and the
    // helper addresses baked into it are process-wide constants.
    unsafe impl Send for JitCode {}
    unsafe impl Sync for JitCode {}

    impl fmt::Debug for JitCode {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("JitCode")
                .field("code_len", &self.code_len)
                .finish()
        }
    }

    impl JitCode {
        /// Enter the block.
        ///
        /// # Safety
        ///
        /// `ctx` must point to a fully-initialised [`JitCtx`] whose
        /// pointers are valid for the duration of the call and whose
        /// `lines` pairs belong to the block this code was emitted from.
        pub(crate) unsafe fn enter(&self, ctx: *mut JitCtx) -> u32 {
            let entry: unsafe extern "C" fn(*mut JitCtx) -> u32 = std::mem::transmute(self.map.ptr);
            entry(ctx)
        }

        /// Host address a chain link jumps to (past the prologue).
        pub(crate) fn chain_entry_addr(&self) -> usize {
            self.map.ptr as usize + self.chain_entry
        }
    }

    /// Lower `block` to host code. `None` only when the exec buffer
    /// cannot be mapped (the caller then latches the interpreter).
    pub(crate) fn translate(block: &Block) -> Option<JitCode> {
        let div: extern "C" fn(u32, u32, u32) -> u32 = jit_div;
        let pq: unsafe extern "C" fn(*mut JitCtx, u32, u32, u32) -> u32 = jit_pq;
        let store: unsafe extern "C" fn(*mut JitCtx, u32, u32) -> u32 = jit_store_inval;
        let helpers = emit_x86_64::Helpers {
            div: div as usize,
            pq: pq as usize,
            store_inval: store as usize,
        };
        let (code, chain_entry) = emit_x86_64::emit(block, &helpers);
        let code_len = code.len();
        ExecMap::new(&code).map(|map| JitCode {
            map,
            code_len,
            chain_entry,
        })
    }
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
mod backend {
    use super::JitCtx;
    use crate::superblock::Block;

    /// Stub on hosts without an emitter: never constructed, so
    /// `Engine::Jit` always falls back to the superblock interpreter.
    #[derive(Debug)]
    pub(crate) struct JitCode {
        _never: core::convert::Infallible,
    }

    impl JitCode {
        /// Unreachable by construction (no `JitCode` value can exist).
        ///
        /// # Safety
        ///
        /// Never called; see [`translate`].
        pub(crate) unsafe fn enter(&self, _ctx: *mut JitCtx) -> u32 {
            match self._never {}
        }

        /// Unreachable by construction (no `JitCode` value can exist).
        pub(crate) fn chain_entry_addr(&self) -> usize {
            match self._never {}
        }
    }

    pub(crate) fn translate(_block: &Block) -> Option<JitCode> {
        None
    }
}

pub(crate) use backend::{translate, JitCode};

/// Entries a [`SharedJitPool`] retains at most (a runaway self-modifying
/// workload would otherwise grow it without bound; 64Ki blocks is far
/// beyond any real working set).
const JIT_POOL_CAP: usize = 1 << 16;

/// Point-in-time counters of the shared JIT pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedJitStats {
    /// Lookups that adopted an existing translation.
    pub installs: u64,
    /// Translations published.
    pub publishes: u64,
    /// Translations currently held.
    pub blocks: u64,
}

#[derive(Debug)]
struct PoolEntry {
    /// Keeps the keying `Arc<Block>` pointer unique for the entry's whole
    /// lifetime (no ABA through allocator reuse).
    _keepalive: Arc<Block>,
    code: Arc<JitCode>,
}

/// A process-wide pool of emitted host code, embedded in
/// [`crate::superblock::SharedTraceCache`] so warm fleet workers adopt the
/// primer's translations with zero local JIT compiles.
///
/// Entries are keyed by the `Arc<Block>` pointer identity: emitted code is
/// a pure function of the (immutable) block, and workers that install a
/// shared superblock hold the *same* `Arc`, so pointer equality is exact.
/// The stored keepalive `Arc` pins the allocation, making key reuse
/// impossible while the entry lives. Host-code pointers never cross
/// process boundaries — the pool lives inside in-process `Arc`s only.
#[derive(Debug, Default)]
pub(crate) struct SharedJitPool {
    map: Mutex<HashMap<usize, PoolEntry>>,
    installs: AtomicU64,
    publishes: AtomicU64,
}

impl SharedJitPool {
    /// Adopt the pooled translation for `block`, if any.
    pub(crate) fn lookup(&self, block: &Arc<Block>) -> Option<Arc<JitCode>> {
        let key = Arc::as_ptr(block) as usize;
        let map = self.map.lock().expect("shared jit pool poisoned");
        let entry = map.get(&key)?;
        self.installs.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.code))
    }

    /// Publish a translation for `block`. Returns `true` if stored.
    pub(crate) fn publish(&self, block: &Arc<Block>, code: &Arc<JitCode>) -> bool {
        let key = Arc::as_ptr(block) as usize;
        let mut map = self.map.lock().expect("shared jit pool poisoned");
        if map.len() >= JIT_POOL_CAP || map.contains_key(&key) {
            return false;
        }
        map.insert(
            key,
            PoolEntry {
                _keepalive: Arc::clone(block),
                code: Arc::clone(code),
            },
        );
        self.publishes.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Point-in-time counters.
    pub(crate) fn stats(&self) -> SharedJitStats {
        let blocks = self.map.lock().expect("shared jit pool poisoned").len() as u64;
        SharedJitStats {
            installs: self.installs.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            blocks,
        }
    }
}

impl fmt::Display for JitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compiles {} dispatches {} chained {} links {} unlinks {} shared_installs {} shared_publishes {} fallbacks {}",
            self.compiles,
            self.dispatches,
            self.chained_dispatches,
            self.links_installed,
            self.unlinks,
            self.shared_installs,
            self.shared_publishes,
            self.fallbacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    #[test]
    fn ctx_offsets_match_the_emitter() {
        let mut regs = [0u32; 32];
        let mut ram = [0u8; 4];
        let ctx = JitCtx {
            regs: regs.as_mut_ptr(),
            ram: ram.as_mut_ptr(),
            ram_len: 4,
            dyn_cycles: 0,
            lines: std::ptr::null(),
            lines_len: 0,
            cycles: 0,
            instructions: 0,
            fuel: 0,
            node: std::ptr::null(),
            chained: 0,
            next_pc: 0,
            exit_op: 0,
            fault_addr: 0,
            link_edge: LINK_NONE,
            link_from: 0,
            pq: std::ptr::null_mut(),
            cache: std::ptr::null_mut(),
            chain: std::ptr::null_mut(),
        };
        let base = std::ptr::addr_of!(ctx) as usize;
        let off = |p: usize| (p - base) as u8;
        assert_eq!(off(std::ptr::addr_of!(ctx.regs) as usize), ctx_off::REGS);
        assert_eq!(off(std::ptr::addr_of!(ctx.ram) as usize), ctx_off::RAM);
        assert_eq!(
            off(std::ptr::addr_of!(ctx.ram_len) as usize),
            ctx_off::RAM_LEN
        );
        assert_eq!(
            off(std::ptr::addr_of!(ctx.dyn_cycles) as usize),
            ctx_off::DYN_CYCLES
        );
        assert_eq!(off(std::ptr::addr_of!(ctx.lines) as usize), ctx_off::LINES);
        assert_eq!(
            off(std::ptr::addr_of!(ctx.lines_len) as usize),
            ctx_off::LINES_LEN
        );
        assert_eq!(
            off(std::ptr::addr_of!(ctx.cycles) as usize),
            ctx_off::CYCLES
        );
        assert_eq!(
            off(std::ptr::addr_of!(ctx.instructions) as usize),
            ctx_off::INSTRUCTIONS
        );
        assert_eq!(off(std::ptr::addr_of!(ctx.fuel) as usize), ctx_off::FUEL);
        assert_eq!(off(std::ptr::addr_of!(ctx.node) as usize), ctx_off::NODE);
        assert_eq!(
            off(std::ptr::addr_of!(ctx.chained) as usize),
            ctx_off::CHAINED
        );
        assert_eq!(
            off(std::ptr::addr_of!(ctx.next_pc) as usize),
            ctx_off::NEXT_PC
        );
        assert_eq!(
            off(std::ptr::addr_of!(ctx.exit_op) as usize),
            ctx_off::EXIT_OP
        );
        assert_eq!(
            off(std::ptr::addr_of!(ctx.fault_addr) as usize),
            ctx_off::FAULT_ADDR
        );
        assert_eq!(
            off(std::ptr::addr_of!(ctx.link_edge) as usize),
            ctx_off::LINK_EDGE
        );
        assert_eq!(
            off(std::ptr::addr_of!(ctx.link_from) as usize),
            ctx_off::LINK_FROM
        );
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    #[test]
    fn node_offsets_match_the_emitter() {
        // The emitter addresses the ChainNode prefix with hard-coded
        // disp8 offsets; pin the repr(C) layout here.
        assert_eq!(
            std::mem::offset_of!(ChainNode, entry),
            node_off::ENTRY as usize
        );
        assert_eq!(
            std::mem::offset_of!(ChainNode, total_instrs),
            node_off::TOTAL_INSTRS as usize
        );
        assert_eq!(std::mem::offset_of!(ChainNode, out), node_off::OUT as usize);
        assert_eq!(
            std::mem::offset_of!(ChainNode, lines_len),
            node_off::LINES_LEN as usize
        );
        assert_eq!(
            std::mem::offset_of!(ChainNode, lines),
            node_off::LINES as usize
        );
        assert_eq!(std::mem::size_of::<std::sync::atomic::AtomicUsize>(), 8);
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    #[test]
    fn div_helper_matches_riscv_edge_cases() {
        // div: by zero => all ones; overflow => dividend.
        assert_eq!(jit_div(0, 7, 0), u32::MAX);
        assert_eq!(jit_div(0, 0x8000_0000, u32::MAX), 0x8000_0000);
        assert_eq!(jit_div(0, (-7i32) as u32, 3), (-2i32) as u32);
        // divu: by zero => all ones.
        assert_eq!(jit_div(1, 7, 0), u32::MAX);
        assert_eq!(jit_div(1, 7, 2), 3);
        // rem: by zero => dividend; overflow => 0.
        assert_eq!(jit_div(2, 7, 0), 7);
        assert_eq!(jit_div(2, 0x8000_0000, u32::MAX), 0);
        assert_eq!(jit_div(2, (-7i32) as u32, 3), (-1i32) as u32);
        // remu: by zero => dividend.
        assert_eq!(jit_div(3, 7, 0), 7);
        assert_eq!(jit_div(3, 7, 2), 1);
    }

    #[test]
    fn host_support_matches_target() {
        assert_eq!(
            host_supported(),
            cfg!(all(target_arch = "x86_64", target_os = "linux"))
        );
    }
}
