//! Warm-start images: snapshot a fully-warmed machine once, then stamp
//! out cheap copies of it for every sweep cell or serve job.
//!
//! A cold `Cpu` pays three setup costs before its first useful retired
//! instruction: zeroing and loading RAM, refilling predecode lines, and
//! re-compiling the hot superblocks its siblings already compiled. A
//! [`WarmImage`] captures all three — the architectural state (registers,
//! PC, counters, PQ-ALU device), the RAM bytes, the predecoded lines with
//! their generation counters, and the compiled trace-cache slots — behind
//! one `Arc`, so cloning an image is a pointer copy and restoring into an
//! existing `Cpu` is a RAM `memcpy` plus sparse cache copies.
//!
//! **Exactness.** Restore replaces RAM, the predecode table (including
//! every per-line generation counter) and every superblock slot as one
//! operation, so the restored machine is indistinguishable from the one
//! that was snapshotted: generation counters rewind *together with* the
//! derived blocks keyed on them, so no stale block can survive to observe
//! a rewound generation. The warm-start property tests in
//! `tests/riscv_warmstart.rs` check bit-identical digests against cold
//! runs, including after stores that invalidate snapshotted superblocks.
//!
//! The per-`Cpu` [`crate::SharedTraceCache`] attachment is deliberately
//! *not* part of the image: which process-wide cache a CPU publishes to
//! is a harness decision, orthogonal to the machine state.
//!
//! JIT **chain links** are likewise never captured: link slots hold raw
//! host-code addresses inside one process's executable mappings, so an
//! image carrying them could chain a restored CPU into unmapped (or
//! wrong) memory. [`crate::Cpu::restore`] clears the chain registry and
//! any pending link instead; restored blocks re-link lazily on their
//! first hot dispatches, which costs one dispatch-loop round trip per
//! edge and nothing architectural.

use crate::cpu::Engine;
use crate::pq::PqAlu;
use crate::predecode::PredecodeImage;
use crate::superblock::{SlotImage, SuperblockStats};
use std::sync::Arc;

/// A cheaply-cloneable snapshot of a `Cpu` (see the module docs). Create
/// one with [`crate::Cpu::snapshot`]; consume it with
/// [`crate::Cpu::restore`] or [`crate::Cpu::from_image`].
#[derive(Debug, Clone)]
pub struct WarmImage {
    pub(crate) state: Arc<WarmState>,
}

/// The owned snapshot payload behind a [`WarmImage`]'s `Arc`.
#[derive(Debug)]
pub(crate) struct WarmState {
    pub(crate) regs: [u32; 32],
    pub(crate) pc: u32,
    pub(crate) cycles: u64,
    pub(crate) instructions: u64,
    pub(crate) mscratch: u32,
    pub(crate) pq: PqAlu,
    pub(crate) ram: Vec<u8>,
    pub(crate) engine: Engine,
    pub(crate) pre: PredecodeImage,
    pub(crate) sb_slot_count: usize,
    pub(crate) sb_slots: Vec<SlotImage>,
    pub(crate) sb_stats: SuperblockStats,
}

impl WarmImage {
    /// Bytes of simulated RAM the image holds.
    pub fn ram_bytes(&self) -> usize {
        self.state.ram.len()
    }

    /// Compiled superblocks captured in the trace-cache snapshot.
    pub fn cached_blocks(&self) -> usize {
        self.state
            .sb_slots
            .iter()
            .filter(|s| s.block.is_some())
            .count()
    }

    /// Predecoded code lines captured.
    pub fn predecoded_lines(&self) -> usize {
        self.state.pre.lines_len()
    }
}
