//! RV32IM(C) instruction-set simulator with the paper's PQ-ALU extension.
//!
//! The DATE 2020 paper integrates its accelerators into the execution stage
//! of the RISCY core (PULPino) and reaches them through four custom R-type
//! instructions under major opcode `0x77`:
//!
//! | funct3 | mnemonic | unit |
//! |--------|----------|------|
//! | 0 | `pq.mul_ter`   | ternary polynomial multiplier |
//! | 1 | `pq.mul_chien` | 4-wide GF(2⁹) Chien evaluator |
//! | 2 | `pq.sha256`    | SHA-256 round engine |
//! | 3 | `pq.modq`      | Barrett modulo-251 reducer |
//!
//! This crate provides the simulator substrate needed to *run* such code:
//!
//! * [`inst`] — instruction decoding for RV32I, the M extension, the C
//!   (compressed) extension via decompression, and the PQ instructions;
//! * [`cpu`] — a RISCY-like interpreter with a documented cycle model and
//!   four engines: a JIT tier lowering superblocks to host machine code,
//!   a trace-cached superblock engine with macro-op fusion (default), a
//!   predecoded single-instruction dispatch path, and the
//!   decode-every-step oracle the faster tiers are differentially tested
//!   against;
//! * [`jit`] — dynamic binary translation of compiled superblocks to
//!   x86-64 host code in W^X exec buffers, with exact fallback to the
//!   superblock interpreter on unsupported hosts;
//! * [`predecode`] — the direct-mapped decode-once instruction cache
//!   behind the fast engines, with store invalidation for self-modifying
//!   code;
//! * [`superblock`] — straight-line block discovery, macro-op fusion and
//!   the PC-indexed trace cache behind the superblock engine;
//! * [`pq`] — the PQ-ALU device state machines (input buffers, busy
//!   cycles, result read-out) wired to the same datapath math as the
//!   `lac-hw` models;
//! * [`asm`] — a small two-pass assembler (labels, ABI register names,
//!   common pseudo-instructions, and the `pq.*` mnemonics) so tests and
//!   examples can write RISC-V programs directly.
//!
//! # Example
//!
//! ```
//! use lac_rv32::Machine;
//!
//! let mut m = Machine::assemble(
//!     r#"
//!         li   a0, 1000
//!         li   a1, 0
//!         pq.modq a0, a0, a1   # a0 = 1000 mod 251 = 247
//!         ecall
//!     "#,
//! ).unwrap();
//! let exit = m.run(10_000).unwrap();
//! assert_eq!(exit.reg(10), 247);
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod cpu;
pub mod disasm;
pub mod inst;
pub mod jit;
pub mod pq;
pub mod predecode;
pub mod superblock;
pub mod warm;

pub use asm::{assemble, AsmError};
pub use cpu::{Cpu, Engine, ExitState, Trap};
pub use disasm::disassemble;
pub use inst::{decode, decompress, Inst};
pub use jit::{JitStats, SharedJitStats};
pub use superblock::{SharedTraceCache, SharedTraceStats};
pub use warm::WarmImage;

/// Convenience wrapper: assemble a program, load it at address 0 and run it.
#[derive(Debug)]
pub struct Machine {
    cpu: Cpu,
}

impl Machine {
    /// Assemble `source` and create a machine with the program loaded at
    /// address 0 and 1 MiB of RAM.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] if the source does not assemble.
    pub fn assemble(source: &str) -> Result<Self, AsmError> {
        let words = assemble(source)?;
        let mut cpu = Cpu::new(1 << 20);
        cpu.load_words(0, &words);
        Ok(Self { cpu })
    }

    /// Access the CPU.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable access to the CPU (e.g. to preload data memory).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// Run until `ecall`, a trap, or the instruction budget is exhausted.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] that stopped execution if it was not a clean
    /// `ecall` exit.
    pub fn run(&mut self, max_instructions: u64) -> Result<ExitState, Trap> {
        self.cpu.run(max_instructions)
    }

    /// Snapshot the machine into a [`WarmImage`] (see [`Cpu::snapshot`]).
    pub fn snapshot(&self) -> WarmImage {
        self.cpu.snapshot()
    }

    /// Build a machine from a [`WarmImage`] (see [`Cpu::from_image`]).
    pub fn from_image(image: &WarmImage) -> Self {
        Self {
            cpu: Cpu::from_image(image),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_runs_arithmetic() {
        let mut m = Machine::assemble(
            r#"
                li   t0, 6
                li   t1, 7
                mul  a0, t0, t1
                ecall
            "#,
        )
        .unwrap();
        let exit = m.run(100).unwrap();
        assert_eq!(exit.reg(10), 42);
    }

    #[test]
    fn machine_reports_cycles() {
        let mut m = Machine::assemble("li a0, 5\necall").unwrap();
        let exit = m.run(100).unwrap();
        assert!(exit.cycles > 0);
        assert!(exit.instructions >= 2);
    }
}
