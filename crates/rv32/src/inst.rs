//! Instruction decoding: RV32I base, M extension, C extension (via
//! decompression) and the PQ-ALU custom instructions (opcode `0x77`).

use std::fmt;

/// Conditional branch comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchOp {
    /// `beq`
    Eq,
    /// `bne`
    Ne,
    /// `blt` (signed)
    Lt,
    /// `bge` (signed)
    Ge,
    /// `bltu`
    Ltu,
    /// `bgeu`
    Geu,
}

/// Memory load widths/extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOp {
    /// `lb` (sign-extended byte)
    Byte,
    /// `lh` (sign-extended halfword)
    Half,
    /// `lw`
    Word,
    /// `lbu`
    ByteU,
    /// `lhu`
    HalfU,
}

/// Memory store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOp {
    /// `sb`
    Byte,
    /// `sh`
    Half,
    /// `sw`
    Word,
}

/// Register-register / register-immediate ALU operations (incl. the M
/// extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

/// CSR access operations (Zicsr subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrOp {
    /// `csrrw` — atomic read/write.
    Rw,
    /// `csrrs` — atomic read and set bits.
    Rs,
    /// `csrrc` — atomic read and clear bits.
    Rc,
}

/// The four PQ-ALU units selected by funct3 (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PqUnit {
    /// `pq.mul_ter` (funct3 = 0)
    MulTer,
    /// `pq.mul_chien` (funct3 = 1)
    MulChien,
    /// `pq.sha256` (funct3 = 2)
    Sha256,
    /// `pq.modq` (funct3 = 3)
    ModQ,
}

impl PqUnit {
    /// The funct3 encoding of this unit.
    pub fn funct3(self) -> u32 {
        match self {
            PqUnit::MulTer => 0,
            PqUnit::MulChien => 1,
            PqUnit::Sha256 => 2,
            PqUnit::ModQ => 3,
        }
    }
}

/// The major opcode shared by all PQ instructions (Section V).
pub const PQ_OPCODE: u32 = 0x77;

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Inst {
    Lui {
        rd: u8,
        imm: i32,
    },
    Auipc {
        rd: u8,
        imm: i32,
    },
    Jal {
        rd: u8,
        offset: i32,
    },
    Jalr {
        rd: u8,
        rs1: u8,
        offset: i32,
    },
    Branch {
        op: BranchOp,
        rs1: u8,
        rs2: u8,
        offset: i32,
    },
    Load {
        op: LoadOp,
        rd: u8,
        rs1: u8,
        offset: i32,
    },
    Store {
        op: StoreOp,
        rs1: u8,
        rs2: u8,
        offset: i32,
    },
    OpImm {
        op: AluOp,
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Op {
        op: AluOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Fence,
    Ecall,
    Ebreak,
    Csr {
        op: CsrOp,
        rd: u8,
        rs1: u8,
        csr: u16,
    },
    Pq {
        unit: PqUnit,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeInstError {
    /// The raw instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeInstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeInstError {}

#[inline]
fn rd(w: u32) -> u8 {
    ((w >> 7) & 0x1f) as u8
}
#[inline]
fn rs1(w: u32) -> u8 {
    ((w >> 15) & 0x1f) as u8
}
#[inline]
fn rs2(w: u32) -> u8 {
    ((w >> 20) & 0x1f) as u8
}
#[inline]
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
#[inline]
fn funct7(w: u32) -> u32 {
    w >> 25
}

#[inline]
fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}
#[inline]
fn imm_s(w: u32) -> i32 {
    (((w as i32) >> 25) << 5) | (((w >> 7) & 0x1f) as i32)
}
#[inline]
fn imm_b(w: u32) -> i32 {
    (((w as i32) >> 31) << 12)
        | ((((w >> 7) & 1) as i32) << 11)
        | ((((w >> 25) & 0x3f) as i32) << 5)
        | ((((w >> 8) & 0xf) as i32) << 1)
}
#[inline]
fn imm_u(w: u32) -> i32 {
    (w & 0xffff_f000) as i32
}
#[inline]
fn imm_j(w: u32) -> i32 {
    (((w as i32) >> 31) << 20)
        | ((((w >> 12) & 0xff) as i32) << 12)
        | ((((w >> 20) & 1) as i32) << 11)
        | ((((w >> 21) & 0x3ff) as i32) << 1)
}

/// Decode a 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeInstError`] for unknown encodings.
pub fn decode(w: u32) -> Result<Inst, DecodeInstError> {
    let err = || DecodeInstError { word: w };
    let inst = match w & 0x7f {
        0x37 => Inst::Lui {
            rd: rd(w),
            imm: imm_u(w),
        },
        0x17 => Inst::Auipc {
            rd: rd(w),
            imm: imm_u(w),
        },
        0x6f => Inst::Jal {
            rd: rd(w),
            offset: imm_j(w),
        },
        0x67 => {
            if funct3(w) != 0 {
                return Err(err());
            }
            Inst::Jalr {
                rd: rd(w),
                rs1: rs1(w),
                offset: imm_i(w),
            }
        }
        0x63 => {
            let op = match funct3(w) {
                0 => BranchOp::Eq,
                1 => BranchOp::Ne,
                4 => BranchOp::Lt,
                5 => BranchOp::Ge,
                6 => BranchOp::Ltu,
                7 => BranchOp::Geu,
                _ => return Err(err()),
            };
            Inst::Branch {
                op,
                rs1: rs1(w),
                rs2: rs2(w),
                offset: imm_b(w),
            }
        }
        0x03 => {
            let op = match funct3(w) {
                0 => LoadOp::Byte,
                1 => LoadOp::Half,
                2 => LoadOp::Word,
                4 => LoadOp::ByteU,
                5 => LoadOp::HalfU,
                _ => return Err(err()),
            };
            Inst::Load {
                op,
                rd: rd(w),
                rs1: rs1(w),
                offset: imm_i(w),
            }
        }
        0x23 => {
            let op = match funct3(w) {
                0 => StoreOp::Byte,
                1 => StoreOp::Half,
                2 => StoreOp::Word,
                _ => return Err(err()),
            };
            Inst::Store {
                op,
                rs1: rs1(w),
                rs2: rs2(w),
                offset: imm_s(w),
            }
        }
        0x13 => {
            let f3 = funct3(w);
            let op = match f3 {
                0 => AluOp::Add,
                1 => AluOp::Sll,
                2 => AluOp::Slt,
                3 => AluOp::Sltu,
                4 => AluOp::Xor,
                5 => {
                    if funct7(w) == 0x20 {
                        AluOp::Sra
                    } else if funct7(w) == 0 {
                        AluOp::Srl
                    } else {
                        return Err(err());
                    }
                }
                6 => AluOp::Or,
                7 => AluOp::And,
                _ => return Err(err()),
            };
            let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                ((w >> 20) & 0x1f) as i32
            } else {
                imm_i(w)
            };
            Inst::OpImm {
                op,
                rd: rd(w),
                rs1: rs1(w),
                imm,
            }
        }
        0x33 => {
            let op = match (funct7(w), funct3(w)) {
                (0x00, 0) => AluOp::Add,
                (0x20, 0) => AluOp::Sub,
                (0x00, 1) => AluOp::Sll,
                (0x00, 2) => AluOp::Slt,
                (0x00, 3) => AluOp::Sltu,
                (0x00, 4) => AluOp::Xor,
                (0x00, 5) => AluOp::Srl,
                (0x20, 5) => AluOp::Sra,
                (0x00, 6) => AluOp::Or,
                (0x00, 7) => AluOp::And,
                (0x01, 0) => AluOp::Mul,
                (0x01, 1) => AluOp::Mulh,
                (0x01, 2) => AluOp::Mulhsu,
                (0x01, 3) => AluOp::Mulhu,
                (0x01, 4) => AluOp::Div,
                (0x01, 5) => AluOp::Divu,
                (0x01, 6) => AluOp::Rem,
                (0x01, 7) => AluOp::Remu,
                _ => return Err(err()),
            };
            Inst::Op {
                op,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            }
        }
        0x0f => Inst::Fence,
        0x73 => match funct3(w) {
            0 => match w >> 20 {
                0 => Inst::Ecall,
                1 => Inst::Ebreak,
                _ => return Err(err()),
            },
            1 => Inst::Csr {
                op: CsrOp::Rw,
                rd: rd(w),
                rs1: rs1(w),
                csr: (w >> 20) as u16,
            },
            2 => Inst::Csr {
                op: CsrOp::Rs,
                rd: rd(w),
                rs1: rs1(w),
                csr: (w >> 20) as u16,
            },
            3 => Inst::Csr {
                op: CsrOp::Rc,
                rd: rd(w),
                rs1: rs1(w),
                csr: (w >> 20) as u16,
            },
            _ => return Err(err()),
        },
        PQ_OPCODE => {
            let unit = match funct3(w) {
                0 => PqUnit::MulTer,
                1 => PqUnit::MulChien,
                2 => PqUnit::Sha256,
                3 => PqUnit::ModQ,
                _ => return Err(err()),
            };
            Inst::Pq {
                unit,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            }
        }
        _ => return Err(err()),
    };
    Ok(inst)
}

/// Expand a 16-bit compressed (C extension) instruction into its 32-bit
/// equivalent.
///
/// Supports the RV32C subset generated by compilers for integer code:
/// arithmetic, loads/stores, stack-pointer forms, jumps and branches.
///
/// # Errors
///
/// Returns [`DecodeInstError`] for reserved or unsupported encodings.
pub fn decompress(h: u16) -> Result<u32, DecodeInstError> {
    let err = || DecodeInstError { word: u32::from(h) };
    let h = u32::from(h);
    let op = h & 0x3;
    let funct3 = (h >> 13) & 0x7;
    // Compressed register (3-bit) to full register number.
    let rc = |x: u32| (x & 0x7) + 8;

    let full = match (op, funct3) {
        // c.addi4spn: addi rd', x2, nzuimm
        (0b00, 0b000) => {
            let imm = ((h >> 7) & 0x30) | ((h >> 1) & 0x3c0) | ((h >> 4) & 0x4) | ((h >> 2) & 0x8);
            if imm == 0 {
                return Err(err());
            }
            let rd = rc(h >> 2);
            (imm << 20) | (2 << 15) | (rd << 7) | 0x13
        }
        // c.lw: lw rd', offset(rs1')
        (0b00, 0b010) => {
            let imm = ((h >> 7) & 0x38) | ((h << 1) & 0x40) | ((h >> 4) & 0x4);
            let rs1 = rc(h >> 7);
            let rd = rc(h >> 2);
            (imm << 20) | (rs1 << 15) | (0b010 << 12) | (rd << 7) | 0x03
        }
        // c.sw: sw rs2', offset(rs1')
        (0b00, 0b110) => {
            let imm = ((h >> 7) & 0x38) | ((h << 1) & 0x40) | ((h >> 4) & 0x4);
            let rs1 = rc(h >> 7);
            let rs2 = rc(h >> 2);
            ((imm >> 5) << 25)
                | (rs2 << 20)
                | (rs1 << 15)
                | (0b010 << 12)
                | ((imm & 0x1f) << 7)
                | 0x23
        }
        // c.nop / c.addi
        (0b01, 0b000) => {
            let rd = (h >> 7) & 0x1f;
            let imm = (((h >> 12) & 1) << 5) | ((h >> 2) & 0x1f);
            let imm = sign_extend(imm, 6);
            ((imm as u32 & 0xfff) << 20) | (rd << 15) | (rd << 7) | 0x13
        }
        // c.jal (RV32): jal x1, offset
        (0b01, 0b001) => cj_to_jal(h, 1),
        // c.li: addi rd, x0, imm
        (0b01, 0b010) => {
            let rd = (h >> 7) & 0x1f;
            let imm = sign_extend((((h >> 12) & 1) << 5) | ((h >> 2) & 0x1f), 6);
            ((imm as u32 & 0xfff) << 20) | (rd << 7) | 0x13
        }
        // c.addi16sp / c.lui
        (0b01, 0b011) => {
            let rd = (h >> 7) & 0x1f;
            if rd == 2 {
                let imm = (((h >> 12) & 1) << 9)
                    | (((h >> 3) & 0x3) << 7)
                    | (((h >> 5) & 1) << 6)
                    | (((h >> 2) & 1) << 5)
                    | (((h >> 6) & 1) << 4);
                let imm = sign_extend(imm, 10);
                if imm == 0 {
                    return Err(err());
                }
                ((imm as u32 & 0xfff) << 20) | (2 << 15) | (2 << 7) | 0x13
            } else {
                let imm = sign_extend((((h >> 12) & 1) << 17) | (((h >> 2) & 0x1f) << 12), 18);
                if imm == 0 {
                    return Err(err());
                }
                (imm as u32 & 0xffff_f000) | (rd << 7) | 0x37
            }
        }
        // c.srli / c.srai / c.andi / c.sub / c.xor / c.or / c.and
        (0b01, 0b100) => {
            let rd = rc(h >> 7);
            match (h >> 10) & 0x3 {
                0b00 => {
                    let sh = ((h >> 2) & 0x1f) | (((h >> 12) & 1) << 5);
                    (sh << 20) | (rd << 15) | (0b101 << 12) | (rd << 7) | 0x13
                }
                0b01 => {
                    let sh = ((h >> 2) & 0x1f) | (((h >> 12) & 1) << 5);
                    (0x20 << 25) | (sh << 20) | (rd << 15) | (0b101 << 12) | (rd << 7) | 0x13
                }
                0b10 => {
                    let imm = sign_extend((((h >> 12) & 1) << 5) | ((h >> 2) & 0x1f), 6);
                    ((imm as u32 & 0xfff) << 20) | (rd << 15) | (0b111 << 12) | (rd << 7) | 0x13
                }
                _ => {
                    let rs2 = rc(h >> 2);
                    let (f7, f3) = match (h >> 5) & 0x3 {
                        0b00 => (0x20u32, 0b000u32), // c.sub
                        0b01 => (0x00, 0b100),       // c.xor
                        0b10 => (0x00, 0b110),       // c.or
                        _ => (0x00, 0b111),          // c.and
                    };
                    (f7 << 25) | (rs2 << 20) | (rd << 15) | (f3 << 12) | (rd << 7) | 0x33
                }
            }
        }
        // c.j: jal x0, offset
        (0b01, 0b101) => cj_to_jal(h, 0),
        // c.beqz / c.bnez
        (0b01, 0b110) | (0b01, 0b111) => {
            let rs1 = rc(h >> 7);
            let imm = (((h >> 12) & 1) << 8)
                | (((h >> 5) & 0x3) << 6)
                | (((h >> 2) & 1) << 5)
                | (((h >> 10) & 0x3) << 3)
                | (((h >> 3) & 0x3) << 1);
            let imm = sign_extend(imm, 9) as u32;
            let f3 = if funct3 == 0b110 { 0b000 } else { 0b001 };
            ((imm >> 12) & 1) << 31
                | (((imm >> 5) & 0x3f) << 25)
                | (rs1 << 15)
                | (f3 << 12)
                | (((imm >> 1) & 0xf) << 8)
                | (((imm >> 11) & 1) << 7)
                | 0x63
        }
        // c.slli
        (0b10, 0b000) => {
            let rd = (h >> 7) & 0x1f;
            let sh = ((h >> 2) & 0x1f) | (((h >> 12) & 1) << 5);
            (sh << 20) | (rd << 15) | (0b001 << 12) | (rd << 7) | 0x13
        }
        // c.lwsp: lw rd, offset(x2)
        (0b10, 0b010) => {
            let rd = (h >> 7) & 0x1f;
            if rd == 0 {
                return Err(err());
            }
            let imm = (((h >> 12) & 1) << 5) | (((h >> 4) & 0x7) << 2) | (((h >> 2) & 0x3) << 6);
            (imm << 20) | (2 << 15) | (0b010 << 12) | (rd << 7) | 0x03
        }
        // c.jr / c.mv / c.ebreak / c.jalr / c.add
        (0b10, 0b100) => {
            let rd = (h >> 7) & 0x1f;
            let rs2 = (h >> 2) & 0x1f;
            let bit12 = (h >> 12) & 1;
            match (bit12, rd, rs2) {
                (0, r, 0) if r != 0 => (r << 15) | 0x67, // c.jr: jalr x0, r, 0
                (0, r, s) if r != 0 => (s << 20) | (r << 7) | 0x33, // c.mv: add r, x0, s
                (1, 0, 0) => 0x0010_0073,                // c.ebreak
                (1, r, 0) if r != 0 => (r << 15) | (1 << 7) | 0x67, // c.jalr
                (1, r, s) if r != 0 => (s << 20) | (r << 15) | (r << 7) | 0x33, // c.add
                _ => return Err(err()),
            }
        }
        // c.swsp: sw rs2, offset(x2)
        (0b10, 0b110) => {
            let rs2 = (h >> 2) & 0x1f;
            let imm = (((h >> 9) & 0xf) << 2) | (((h >> 7) & 0x3) << 6);
            ((imm >> 5) << 25)
                | (rs2 << 20)
                | (2 << 15)
                | (0b010 << 12)
                | ((imm & 0x1f) << 7)
                | 0x23
        }
        _ => return Err(err()),
    };
    Ok(full)
}

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn cj_to_jal(h: u32, rd: u32) -> u32 {
    let imm = (((h >> 12) & 1) << 11)
        | (((h >> 11) & 1) << 4)
        | (((h >> 9) & 0x3) << 8)
        | (((h >> 8) & 1) << 10)
        | (((h >> 7) & 1) << 6)
        | (((h >> 6) & 1) << 7)
        | (((h >> 3) & 0x7) << 1)
        | (((h >> 2) & 1) << 5);
    let imm = sign_extend(imm, 12) as u32;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xff) << 12)
        | (rd << 7)
        | 0x6f
}

#[cfg(test)]
// Binary literals in these tests are grouped by RV32C instruction *fields*
// (funct3 / imm / register slices), not by nibbles.
#[allow(clippy::unusual_byte_groupings)]
mod tests {
    use super::*;

    #[test]
    fn decode_addi() {
        // addi x5, x6, -3
        let w = (((-3i32 as u32) & 0xfff) << 20) | (6 << 15) | (5 << 7) | 0x13;
        assert_eq!(
            decode(w).unwrap(),
            Inst::OpImm {
                op: AluOp::Add,
                rd: 5,
                rs1: 6,
                imm: -3
            }
        );
    }

    #[test]
    fn decode_r_type_and_m() {
        // add x1, x2, x3
        let add = (3 << 20) | (2 << 15) | (1 << 7) | 0x33;
        assert!(matches!(
            decode(add).unwrap(),
            Inst::Op { op: AluOp::Add, .. }
        ));
        // mul x1, x2, x3
        let mul = (1 << 25) | (3 << 20) | (2 << 15) | (1 << 7) | 0x33;
        assert!(matches!(
            decode(mul).unwrap(),
            Inst::Op { op: AluOp::Mul, .. }
        ));
        // sub x4, x5, x6
        let sub = (0x20 << 25) | (6 << 20) | (5 << 15) | (4 << 7) | 0x33;
        assert!(matches!(
            decode(sub).unwrap(),
            Inst::Op { op: AluOp::Sub, .. }
        ));
    }

    #[test]
    fn decode_branch_offsets() {
        // beq x1, x2, +8
        let w = 0x0020_8463; // standard encoding of beq x1,x2,8
        match decode(w).unwrap() {
            Inst::Branch {
                op: BranchOp::Eq,
                rs1: 1,
                rs2: 2,
                offset,
            } => assert_eq!(offset, 8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decode_negative_branch_offset() {
        // bne x10, x0, -4  => 0xfe051ee3
        match decode(0xfe05_1ee3).unwrap() {
            Inst::Branch {
                op: BranchOp::Ne,
                rs1: 10,
                rs2: 0,
                offset,
            } => {
                assert_eq!(offset, -4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decode_loads_and_stores() {
        // lw x7, 16(x2) = 0x01012383
        match decode(0x0101_2383).unwrap() {
            Inst::Load {
                op: LoadOp::Word,
                rd: 7,
                rs1: 2,
                offset,
            } => assert_eq!(offset, 16),
            other => panic!("{other:?}"),
        }
        // sw x7, -8(x2) = 0xfe712c23
        match decode(0xfe71_2c23).unwrap() {
            Inst::Store {
                op: StoreOp::Word,
                rs1: 2,
                rs2: 7,
                offset,
            } => assert_eq!(offset, -8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decode_jal_jalr() {
        // jal x1, +2048? Use jal x1, 16 = 0x010000ef
        match decode(0x0100_00ef).unwrap() {
            Inst::Jal { rd: 1, offset } => assert_eq!(offset, 16),
            other => panic!("{other:?}"),
        }
        // jalr x0, 0(x1) = 0x00008067 (ret)
        match decode(0x0000_8067).unwrap() {
            Inst::Jalr {
                rd: 0,
                rs1: 1,
                offset,
            } => assert_eq!(offset, 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decode_system() {
        assert_eq!(decode(0x0000_0073).unwrap(), Inst::Ecall);
        assert_eq!(decode(0x0010_0073).unwrap(), Inst::Ebreak);
    }

    #[test]
    fn decode_pq_instructions() {
        for (f3, unit) in [
            (0u32, PqUnit::MulTer),
            (1, PqUnit::MulChien),
            (2, PqUnit::Sha256),
            (3, PqUnit::ModQ),
        ] {
            let w = (7 << 20) | (6 << 15) | (f3 << 12) | (5 << 7) | PQ_OPCODE;
            assert_eq!(
                decode(w).unwrap(),
                Inst::Pq {
                    unit,
                    rd: 5,
                    rs1: 6,
                    rs2: 7
                },
                "funct3 {f3}"
            );
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(decode(0x0000_007b).is_err());
        assert!(decode(0xffff_ffff).is_err());
    }

    #[test]
    fn decompress_c_addi() {
        // c.addi x8, 1 => 0x0405
        let w = decompress(0x0405).unwrap();
        assert_eq!(
            decode(w).unwrap(),
            Inst::OpImm {
                op: AluOp::Add,
                rd: 8,
                rs1: 8,
                imm: 1
            }
        );
    }

    #[test]
    fn decompress_c_li_negative() {
        // c.li x10, -1 => funct3=010, rd=10, imm=-1 => bits:
        // 010 1 01010 11111 01 = 0x557d
        let w = decompress(0x557d).unwrap();
        assert_eq!(
            decode(w).unwrap(),
            Inst::OpImm {
                op: AluOp::Add,
                rd: 10,
                rs1: 0,
                imm: -1
            }
        );
    }

    #[test]
    fn decompress_c_mv_and_add() {
        // c.mv x10, x11 => 0x852e
        let w = decompress(0x852e).unwrap();
        assert_eq!(
            decode(w).unwrap(),
            Inst::Op {
                op: AluOp::Add,
                rd: 10,
                rs1: 0,
                rs2: 11
            }
        );
        // c.add x10, x11 => 0x952e
        let w = decompress(0x952e).unwrap();
        assert_eq!(
            decode(w).unwrap(),
            Inst::Op {
                op: AluOp::Add,
                rd: 10,
                rs1: 10,
                rs2: 11
            }
        );
    }

    #[test]
    fn decompress_c_lwsp_swsp() {
        // c.lwsp x5, 12(sp) => 0x42b2? Compute: funct3=010 op=10 rd=5
        // imm[5]=0 imm[4:2]=011 imm[7:6]=00 => bits 010 0 00101 0110 0 10
        let h = 0b010_0_00101_01100_10;
        let w = decompress(h as u16).unwrap();
        match decode(w).unwrap() {
            Inst::Load {
                op: LoadOp::Word,
                rd: 5,
                rs1: 2,
                offset,
            } => assert_eq!(offset, 12),
            other => panic!("{other:?}"),
        }
        // c.swsp x5, 12(sp): funct3=110 imm[5:2]=0011 imm[7:6]=00 rs2=5
        let h = 0b110_0011_00_00101_10;
        let w = decompress(h as u16).unwrap();
        match decode(w).unwrap() {
            Inst::Store {
                op: StoreOp::Word,
                rs1: 2,
                rs2: 5,
                offset,
            } => assert_eq!(offset, 12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decompress_c_j() {
        // c.j +4: funct3=101 op=01, imm=4 -> imm[3:1]=010
        let h = 0b101_00000000100_01u32;
        let w = decompress(h as u16).unwrap();
        match decode(w).unwrap() {
            Inst::Jal { rd: 0, offset } => assert_eq!(offset, 4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decompress_c_beqz() {
        // c.beqz x8, +4: funct3=110, rs1'=000; offset[2:1] sits in bits 4:3,
        // so offset = 4 → bits[6:2] = 00100.
        let h = 0b110_000_000_00100_01u32;
        let w = decompress(h as u16).unwrap();
        match decode(w).unwrap() {
            Inst::Branch {
                op: BranchOp::Eq,
                rs1: 8,
                rs2: 0,
                offset,
            } => {
                assert_eq!(offset, 4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decompress_rejects_reserved() {
        assert!(decompress(0x0000).is_err()); // all-zero is illegal
    }
}
