//! The negacyclic Number Theoretic Transform over q = 12289.
//!
//! NewHope multiplies in Z_q\[x\]/(xⁿ+1) with an O(n log n) NTT — the
//! arithmetic the paper contrasts with LAC's add/sub ternary multiplier
//! (Section II: "In contrast to other lattice-based schemes, LAC does not
//! use an NTT-based polynomial multiplication").
//!
//! The roots of unity are derived at construction time from a generator of
//! Z_q^* (no magic constants): ψ is a primitive 2n-th root, ψ² drives the
//! cyclic transform, and the pre-/post-scaling by powers of ψ folds the
//! negacyclic reduction into the transform.

use lac_meter::{Meter, Op};

/// The NewHope modulus q = 12289 = 12·1024 + 1 (supports 4096-th roots).
pub const NEWHOPE_Q: u32 = 12289;

#[inline]
fn add_q(a: u32, b: u32) -> u32 {
    let s = a + b;
    if s >= NEWHOPE_Q {
        s - NEWHOPE_Q
    } else {
        s
    }
}

#[inline]
fn sub_q(a: u32, b: u32) -> u32 {
    if a >= b {
        a - b
    } else {
        a + NEWHOPE_Q - b
    }
}

#[inline]
fn mul_q(a: u32, b: u32) -> u32 {
    (a * b) % NEWHOPE_Q
}

fn pow_q(mut base: u32, mut e: u32) -> u32 {
    let mut acc = 1u32;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_q(acc, base);
        }
        base = mul_q(base, base);
        e >>= 1;
    }
    acc
}

/// Modular inverse via Fermat.
fn inv_q(a: u32) -> u32 {
    pow_q(a, NEWHOPE_Q - 2)
}

/// NTT context for a fixed power-of-two dimension n.
#[derive(Debug, Clone)]
pub struct Ntt {
    n: usize,
    /// ψ^i (bit-ordered), for the negacyclic pre-scale.
    psi_pows: Vec<u32>,
    /// ψ^{-i} · n^{-1}, for the negacyclic post-scale.
    psi_inv_pows: Vec<u32>,
    /// ω = ψ² (primitive n-th root) powers for the cyclic stages.
    omega: u32,
    omega_inv: u32,
}

impl Ntt {
    /// Build the context for dimension `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or exceeds the root support
    /// (2n must divide q − 1).
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "n must be a power of two");
        assert_eq!(
            (NEWHOPE_Q - 1) as usize % (2 * n),
            0,
            "q-1 must be divisible by 2n"
        );
        // Find a generator g of Z_q^* and derive ψ = g^((q−1)/2n).
        let psi = (2u32..NEWHOPE_Q)
            .map(|g| pow_q(g, (NEWHOPE_Q - 1) / (2 * n as u32)))
            .find(|&cand| {
                // ψ must be a *primitive* 2n-th root: ψ^n = −1.
                pow_q(cand, n as u32) == NEWHOPE_Q - 1
            })
            .expect("a primitive 2n-th root exists");
        let n_inv = inv_q(n as u32);
        let psi_inv = inv_q(psi);
        let psi_pows: Vec<u32> = (0..n).map(|i| pow_q(psi, i as u32)).collect();
        let psi_inv_pows: Vec<u32> = (0..n)
            .map(|i| mul_q(pow_q(psi_inv, i as u32), n_inv))
            .collect();
        Self {
            n,
            psi_pows,
            psi_inv_pows,
            omega: mul_q(psi, psi),
            omega_inv: inv_q(mul_q(psi, psi)),
        }
    }

    /// The dimension n.
    pub fn n(&self) -> usize {
        self.n
    }

    fn bit_reverse(values: &mut [u32]) {
        let n = values.len();
        let bits = n.trailing_zeros();
        for i in 0..n {
            let j = (i as u32).reverse_bits() >> (32 - bits);
            if (j as usize) > i {
                values.swap(i, j as usize);
            }
        }
    }

    /// In-place iterative cyclic NTT with root `omega`.
    fn transform<M: Meter>(&self, values: &mut [u32], omega: u32, meter: &mut M) {
        let n = self.n;
        Self::bit_reverse(values);
        let mut len = 2;
        while len <= n {
            let wlen = pow_q(omega, (n / len) as u32);
            let half = len / 2;
            for start in (0..n).step_by(len) {
                let mut w = 1u32;
                for j in 0..half {
                    let u = values[start + j];
                    let v = mul_q(values[start + j + half], w);
                    values[start + j] = add_q(u, v);
                    values[start + j + half] = sub_q(u, v);
                    w = mul_q(w, wlen);
                }
            }
            len <<= 1;
        }
        // Software butterfly cost: 2 loads, 2 multiplies (twiddle update +
        // product), Barrett-style reduction ALU, 2 stores, loop overhead.
        let butterflies = (n / 2 * n.trailing_zeros() as usize) as u64;
        meter.charge(Op::Load, 2 * butterflies);
        meter.charge(Op::Mul, 2 * butterflies);
        meter.charge(Op::Alu, 5 * butterflies);
        meter.charge(Op::Store, 2 * butterflies);
        meter.charge(Op::LoopIter, butterflies);
    }

    /// Forward negacyclic NTT.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn forward<M: Meter>(&self, poly: &[u16], meter: &mut M) -> Vec<u16> {
        assert_eq!(poly.len(), self.n, "length mismatch");
        let mut values: Vec<u32> = poly
            .iter()
            .zip(&self.psi_pows)
            .map(|(&c, &p)| mul_q(u32::from(c), p))
            .collect();
        meter.charge(Op::Mul, self.n as u64);
        meter.charge(Op::Alu, 2 * self.n as u64);
        self.transform(&mut values, self.omega, meter);
        values.iter().map(|&v| v as u16).collect()
    }

    /// Inverse negacyclic NTT.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn inverse<M: Meter>(&self, values: &[u16], meter: &mut M) -> Vec<u16> {
        assert_eq!(values.len(), self.n, "length mismatch");
        let mut work: Vec<u32> = values.iter().map(|&v| u32::from(v)).collect();
        self.transform(&mut work, self.omega_inv, meter);
        meter.charge(Op::Mul, self.n as u64);
        meter.charge(Op::Alu, 2 * self.n as u64);
        work.iter()
            .zip(&self.psi_inv_pows)
            .map(|(&v, &p)| mul_q(v, p) as u16)
            .collect()
    }

    /// Coefficient-wise product of two NTT-domain vectors.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn pointwise<M: Meter>(&self, a: &[u16], b: &[u16], meter: &mut M) -> Vec<u16> {
        assert_eq!(a.len(), self.n, "length mismatch");
        assert_eq!(b.len(), self.n, "length mismatch");
        meter.charge(Op::Load, 2 * self.n as u64);
        meter.charge(Op::Mul, 2 * self.n as u64);
        meter.charge(Op::Alu, 3 * self.n as u64);
        meter.charge(Op::Store, self.n as u64);
        meter.charge(Op::LoopIter, self.n as u64);
        a.iter()
            .zip(b)
            .map(|(&x, &y)| mul_q(u32::from(x), u32::from(y)) as u16)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::{CycleLedger, NullMeter};
    use lac_rand::prop;

    /// Schoolbook negacyclic product, the correctness reference.
    fn negacyclic_reference(a: &[u16], b: &[u16]) -> Vec<u16> {
        let n = a.len();
        let q = NEWHOPE_Q as i64;
        let mut acc = vec![0i64; n];
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                let prod = i64::from(ai) * i64::from(bj);
                let k = i + j;
                if k < n {
                    acc[k] += prod;
                } else {
                    acc[k - n] -= prod;
                }
            }
        }
        acc.iter().map(|&v| (v.rem_euclid(q)) as u16).collect()
    }

    #[test]
    fn roundtrip_identity() {
        for n in [8usize, 64, 512, 1024] {
            let ntt = Ntt::new(n);
            let poly: Vec<u16> = (0..n).map(|i| (i as u32 * 7 % NEWHOPE_Q) as u16).collect();
            let freq = ntt.forward(&poly, &mut NullMeter);
            let back = ntt.inverse(&freq, &mut NullMeter);
            assert_eq!(back, poly, "n={n}");
        }
    }

    #[test]
    fn convolution_matches_schoolbook_small() {
        let n = 16;
        let ntt = Ntt::new(n);
        let a: Vec<u16> = (0..n)
            .map(|i| (i as u32 * 123 % NEWHOPE_Q) as u16)
            .collect();
        let b: Vec<u16> = (0..n)
            .map(|i| (i as u32 * 456 + 7) as u16 % 12289)
            .collect();
        let got = ntt.inverse(
            &ntt.pointwise(
                &ntt.forward(&a, &mut NullMeter),
                &ntt.forward(&b, &mut NullMeter),
                &mut NullMeter,
            ),
            &mut NullMeter,
        );
        assert_eq!(got, negacyclic_reference(&a, &b));
    }

    #[test]
    fn convolution_matches_schoolbook_n512() {
        let n = 512;
        let ntt = Ntt::new(n);
        let a: Vec<u16> = (0..n).map(|i| (i as u32 * 31 % NEWHOPE_Q) as u16).collect();
        let b: Vec<u16> = (0..n).map(|i| (i as u32 * 97 % NEWHOPE_Q) as u16).collect();
        let got = ntt.inverse(
            &ntt.pointwise(
                &ntt.forward(&a, &mut NullMeter),
                &ntt.forward(&b, &mut NullMeter),
                &mut NullMeter,
            ),
            &mut NullMeter,
        );
        assert_eq!(got, negacyclic_reference(&a, &b));
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // x^(n-1) · x = xⁿ ≡ −1.
        let n = 8;
        let ntt = Ntt::new(n);
        let mut a = vec![0u16; n];
        a[n - 1] = 1;
        let mut b = vec![0u16; n];
        b[1] = 1;
        let got = ntt.inverse(
            &ntt.pointwise(
                &ntt.forward(&a, &mut NullMeter),
                &ntt.forward(&b, &mut NullMeter),
                &mut NullMeter,
            ),
            &mut NullMeter,
        );
        let mut expect = vec![0u16; n];
        expect[0] = (NEWHOPE_Q - 1) as u16;
        assert_eq!(got, expect);
    }

    #[test]
    fn forward_cost_is_n_log_n() {
        let ntt = Ntt::new(1024);
        let poly = vec![1u16; 1024];
        let mut l = CycleLedger::new();
        ntt.forward(&poly, &mut l);
        // 512 · 10 butterflies at ~14 modelled cycles each ≈ 80k; well
        // below the n² ≈ 9.4M of a schoolbook product.
        assert!((40_000..200_000).contains(&l.total()), "{}", l.total());
    }

    #[test]
    fn prop_roundtrip() {
        prop::check("ntt_roundtrip", 32, |rng| {
            let coeffs = prop::vec_u16(rng, 64, 12289);
            let ntt = Ntt::new(64);
            let freq = ntt.forward(&coeffs, &mut NullMeter);
            prop::ensure_eq(ntt.inverse(&freq, &mut NullMeter), coeffs)
        });
    }

    #[test]
    fn prop_convolution() {
        prop::check("ntt_convolution", 32, |rng| {
            let a = prop::vec_u16(rng, 32, 12289);
            let b = prop::vec_u16(rng, 32, 12289);
            let ntt = Ntt::new(32);
            let got = ntt.inverse(
                &ntt.pointwise(
                    &ntt.forward(&a, &mut NullMeter),
                    &ntt.forward(&b, &mut NullMeter),
                    &mut NullMeter,
                ),
                &mut NullMeter,
            );
            prop::ensure_eq(got, negacyclic_reference(&a, &b))
        });
    }
}
