//! The CPA-secure NewHope KEM (the configuration \[8\] reports).

use crate::backend::NhBackend;
use crate::ntt::{Ntt, NEWHOPE_Q};
use crate::poly::NhPoly;
use crate::sample::{gen_a, sample_noise};
use crate::NewHopeParams;
use lac_meter::{Meter, Op, Phase};
use lac_rand::Rng;

const DOMAIN_COINS: u8 = 0xd0;
const DOMAIN_KEY: u8 = 0xd1;

/// A NewHope public key: seed for â plus the NTT-domain b̂.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NhPublicKey {
    pub(crate) seed: [u8; 32],
    pub(crate) b_hat: NhPoly,
}

impl NhPublicKey {
    /// Serialize: b̂ (14-bit packed) ‖ seed.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.b_hat.to_bytes14(&mut lac_meter::NullMeter);
        out.extend_from_slice(&self.seed);
        out
    }
}

/// A NewHope secret key: the NTT-domain ŝ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NhSecretKey {
    pub(crate) s_hat: NhPoly,
}

/// A NewHope ciphertext: NTT-domain û plus the compressed v.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NhCiphertext {
    pub(crate) u_hat: NhPoly,
    pub(crate) v_compressed: Vec<u8>,
}

impl NhCiphertext {
    /// Serialize: û (14-bit packed) ‖ compressed v.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.u_hat.to_bytes14(&mut lac_meter::NullMeter);
        out.extend_from_slice(&self.v_compressed);
        out
    }
}

/// A 256-bit CPA shared secret.
#[derive(Clone, PartialEq, Eq)]
pub struct NhSharedSecret([u8; 32]);

impl NhSharedSecret {
    /// View the secret bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl std::fmt::Debug for NhSharedSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("NhSharedSecret(..)")
    }
}

/// The CPA-secure NewHope KEM.
#[derive(Debug)]
pub struct CpaKem {
    params: NewHopeParams,
    ntt: Ntt,
}

impl CpaKem {
    /// Instantiate (builds the NTT tables).
    pub fn new(params: NewHopeParams) -> Self {
        Self {
            ntt: Ntt::new(params.n()),
            params,
        }
    }

    /// The parameter set.
    pub fn params(&self) -> &NewHopeParams {
        &self.params
    }

    /// Encode a 256-bit message: each bit drives `redundancy` coefficients
    /// set to ⌊q/2⌋.
    fn encode_message<M: Meter>(&self, msg: &[u8; 32], meter: &mut M) -> NhPoly {
        let n = self.params.n();
        let r = self.params.redundancy();
        let half_q = (NEWHOPE_Q / 2) as u16;
        let mut coeffs = vec![0u16; n];
        for bit in 0..256 {
            let value = if (msg[bit / 8] >> (bit % 8)) & 1 == 1 {
                half_q
            } else {
                0
            };
            for copy in 0..r {
                coeffs[bit + 256 * copy] = value;
            }
        }
        meter.charge(Op::Load, 256);
        meter.charge(Op::Alu, 2 * 256);
        meter.charge(Op::Store, n as u64);
        meter.charge(Op::LoopIter, n as u64);
        NhPoly::from_coeffs(coeffs)
    }

    /// Threshold-decode: sum the distances of the `redundancy` copies from
    /// q/2 and compare against r·q/4.
    fn decode_message<M: Meter>(&self, poly: &NhPoly, meter: &mut M) -> [u8; 32] {
        let r = self.params.redundancy();
        let q = NEWHOPE_Q as i32;
        let mut msg = [0u8; 32];
        for bit in 0..256 {
            let mut dist = 0i32;
            for copy in 0..r {
                let c = i32::from(poly.coeffs()[bit + 256 * copy]);
                dist += (c - q / 2).abs();
            }
            if dist < r as i32 * q / 4 {
                msg[bit / 8] |= 1 << (bit % 8);
            }
            meter.charge(Op::Load, r as u64);
            meter.charge(Op::Alu, 3 * r as u64 + 3);
            meter.charge(Op::LoopIter, 1);
        }
        meter.charge(Op::Store, 32);
        msg
    }

    /// Generate a key pair.
    pub fn keygen<B: NhBackend + ?Sized, R: Rng>(
        &self,
        rng: &mut R,
        backend: &mut B,
        meter: &mut dyn Meter,
    ) -> (NhPublicKey, NhSecretKey) {
        let n = self.params.n();
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        let mut noise_seed = [0u8; 32];
        rng.fill_bytes(&mut noise_seed);

        let a_hat = gen_a(backend, &seed, n, meter);
        let s = sample_noise(backend, &noise_seed, 1, n, meter);
        let e = sample_noise(backend, &noise_seed, 2, n, meter);

        meter.enter(Phase::Mul);
        let s_hat = NhPoly::from_coeffs(backend.ntt_forward(&self.ntt, s.coeffs(), meter));
        let e_hat = NhPoly::from_coeffs(backend.ntt_forward(&self.ntt, e.coeffs(), meter));
        let mut as_hat = self
            .ntt
            .pointwise(a_hat.coeffs(), s_hat.coeffs(), &mut &mut *meter);
        meter.leave();
        let b_hat = NhPoly::from_coeffs(std::mem::take(&mut as_hat)).add(&e_hat, &mut &mut *meter);

        (NhPublicKey { seed, b_hat }, NhSecretKey { s_hat })
    }

    /// Encapsulate against `pk`.
    pub fn encapsulate<B: NhBackend + ?Sized, R: Rng>(
        &self,
        rng: &mut R,
        pk: &NhPublicKey,
        backend: &mut B,
        meter: &mut dyn Meter,
    ) -> (NhCiphertext, NhSharedSecret) {
        let n = self.params.n();
        let mut m = [0u8; 32];
        rng.fill_bytes(&mut m);
        // coins = XOF(m ‖ DOMAIN_COINS)
        let mut coins = [0u8; 32];
        meter.enter(Phase::Hash);
        backend.xof_expand(&m, DOMAIN_COINS, &mut coins, meter);
        meter.leave();

        let a_hat = gen_a(backend, &pk.seed, n, meter);
        let s_prime = sample_noise(backend, &coins, 1, n, meter);
        let e_prime = sample_noise(backend, &coins, 2, n, meter);
        let e_second = sample_noise(backend, &coins, 3, n, meter);

        meter.enter(Phase::Mul);
        let t_hat = NhPoly::from_coeffs(backend.ntt_forward(&self.ntt, s_prime.coeffs(), meter));
        let e1_hat = NhPoly::from_coeffs(backend.ntt_forward(&self.ntt, e_prime.coeffs(), meter));
        let at = self
            .ntt
            .pointwise(a_hat.coeffs(), t_hat.coeffs(), &mut &mut *meter);
        let bt = self
            .ntt
            .pointwise(pk.b_hat.coeffs(), t_hat.coeffs(), &mut &mut *meter);
        let bt_time = NhPoly::from_coeffs(backend.ntt_inverse(&self.ntt, &bt, meter));
        meter.leave();

        let u_hat = NhPoly::from_coeffs(at).add(&e1_hat, &mut &mut *meter);
        let encoded = self.encode_message(&m, &mut &mut *meter);
        let v = bt_time
            .add(&e_second, &mut &mut *meter)
            .add(&encoded, &mut &mut *meter);

        meter.enter(Phase::Serialize);
        let v_compressed = v.compress3(&mut &mut *meter);
        meter.leave();

        let ct = NhCiphertext {
            u_hat,
            v_compressed,
        };
        let key = self.derive_key(&m, &ct, backend, meter);
        (ct, key)
    }

    /// Decapsulate (one inverse NTT plus threshold decoding plus one hash —
    /// the cheapness the paper's Table II NewHope row shows).
    pub fn decapsulate<B: NhBackend + ?Sized>(
        &self,
        sk: &NhSecretKey,
        ct: &NhCiphertext,
        backend: &mut B,
        meter: &mut dyn Meter,
    ) -> NhSharedSecret {
        let n = self.params.n();
        meter.enter(Phase::Mul);
        let us = self
            .ntt
            .pointwise(ct.u_hat.coeffs(), sk.s_hat.coeffs(), &mut &mut *meter);
        let us_time = NhPoly::from_coeffs(backend.ntt_inverse(&self.ntt, &us, meter));
        meter.leave();

        meter.enter(Phase::Serialize);
        let v = NhPoly::decompress3(&ct.v_compressed, n).expect("internal v length");
        meter.leave();
        let diff = v.sub(&us_time, &mut &mut *meter);
        let m = self.decode_message(&diff, &mut &mut *meter);
        self.derive_key(&m, ct, backend, meter)
    }

    fn derive_key<B: NhBackend + ?Sized>(
        &self,
        m: &[u8; 32],
        ct: &NhCiphertext,
        backend: &mut B,
        meter: &mut dyn Meter,
    ) -> NhSharedSecret {
        // K = XOF(m ‖ H(ct)-surrogate): absorb m and the first ct bytes.
        // (CPA derivation; the exact wire hash differs across NewHope
        // variants — fixed here and documented.)
        meter.enter(Phase::Hash);
        let mut input = [0u8; 64];
        input[..32].copy_from_slice(m);
        let ct_bytes = ct.to_bytes();
        input[32..].copy_from_slice(&ct_bytes[..32]);
        let mut key = [0u8; 32];
        backend.xof_expand(&input, DOMAIN_KEY, &mut key, meter);
        meter.leave();
        NhSharedSecret(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{AcceleratedBackend, SoftwareBackend};
    use lac_meter::{CycleLedger, NullMeter};
    use lac_rand::Sha256CtrRng;

    #[test]
    fn roundtrip_both_sets_and_backends() {
        for params in [NewHopeParams::newhope512(), NewHopeParams::newhope1024()] {
            let kem = CpaKem::new(params);
            for seed in 0..3u64 {
                let mut sw = SoftwareBackend::new();
                let mut rng = Sha256CtrRng::seed_from_u64(seed);
                let (pk, sk) = kem.keygen(&mut rng, &mut sw, &mut NullMeter);
                let (ct, k1) = kem.encapsulate(&mut rng, &pk, &mut sw, &mut NullMeter);
                let mut hw = AcceleratedBackend::new();
                let k2 = kem.decapsulate(&sk, &ct, &mut hw, &mut NullMeter);
                assert_eq!(k1, k2, "{} seed {seed}", params.name());
            }
        }
    }

    #[test]
    fn wire_sizes_match_paper() {
        let kem = CpaKem::new(NewHopeParams::newhope1024());
        let mut backend = SoftwareBackend::new();
        let mut rng = Sha256CtrRng::seed_from_u64(5);
        let (pk, _sk) = kem.keygen(&mut rng, &mut backend, &mut NullMeter);
        assert_eq!(pk.to_bytes().len(), 1824);
        let (ct, _) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);
        assert_eq!(ct.to_bytes().len(), 2176);
    }

    #[test]
    fn decapsulation_is_cheap() {
        // The NewHope CPA row's signature: decaps ≪ encaps (one INTT + hash
        // vs the full encryption pipeline).
        let kem = CpaKem::new(NewHopeParams::newhope1024());
        let mut backend = AcceleratedBackend::new();
        let mut rng = Sha256CtrRng::seed_from_u64(6);
        let (pk, sk) = kem.keygen(&mut rng, &mut backend, &mut NullMeter);
        let (ct, _) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);
        let mut enc = CycleLedger::new();
        kem.encapsulate(&mut rng, &pk, &mut backend, &mut enc);
        let mut dec = CycleLedger::new();
        kem.decapsulate(&sk, &ct, &mut backend, &mut dec);
        assert!(
            dec.total() * 2 < enc.total(),
            "dec {} enc {}",
            dec.total(),
            enc.total()
        );
    }

    #[test]
    fn noise_stays_within_threshold_margin() {
        // Many roundtrips: threshold decoding with redundancy 4 must never
        // fail at these noise levels.
        let kem = CpaKem::new(NewHopeParams::newhope1024());
        let mut backend = SoftwareBackend::new();
        let mut rng = Sha256CtrRng::seed_from_u64(7);
        for _ in 0..10 {
            let (pk, sk) = kem.keygen(&mut rng, &mut backend, &mut NullMeter);
            let (ct, k1) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);
            assert_eq!(kem.decapsulate(&sk, &ct, &mut backend, &mut NullMeter), k1);
        }
    }
}
