//! NewHope's samplers: uniform `GenA` from SHAKE128 and the centered
//! binomial noise distribution Ψ₈.
//!
//! `GenA` samples the public polynomial directly in the NTT domain (the
//! NewHope trick that saves one transform); noise coefficients are
//! `HW(a) − HW(b)` over two 8-bit strings, giving a centered binomial with
//! k = 8. All randomness flows through the backend's XOF so the two
//! execution profiles charge their own costs.

use crate::backend::NhBackend;
use crate::ntt::NEWHOPE_Q;
use crate::poly::NhPoly;
use lac_meter::{Meter, Op, Phase};

/// Expand the public polynomial â (NTT domain) from a 32-byte seed.
///
/// 16-bit little-endian candidates, rejected at ≥ 5·q (the NewHope
/// reference's acceptance window, keeping the modulo cheap).
pub fn gen_a<B: NhBackend + ?Sized>(
    backend: &mut B,
    seed: &[u8; 32],
    n: usize,
    meter: &mut dyn Meter,
) -> NhPoly {
    meter.enter(Phase::GenA);
    let mut coeffs = Vec::with_capacity(n);
    let mut counter = 0u8;
    'outer: loop {
        // Squeeze in blocks; a fresh domain byte per block keeps the
        // stateless-backend interface simple.
        let mut buf = [0u8; 336]; // two SHAKE128 rate blocks
        backend.xof_expand(seed, counter, &mut buf, meter);
        counter = counter.wrapping_add(1);
        for pair in buf.chunks_exact(2) {
            let candidate = u16::from_le_bytes([pair[0], pair[1]]);
            meter.charge(Op::Load, 1);
            meter.charge(Op::Alu, 2);
            meter.charge(Op::Branch, 1);
            meter.charge(Op::LoopIter, 1);
            if u32::from(candidate) < 5 * NEWHOPE_Q {
                coeffs.push((u32::from(candidate) % NEWHOPE_Q) as u16);
                meter.charge(Op::Mul, 1); // Barrett fold for the % q
                meter.charge(Op::Alu, 2);
                meter.charge(Op::Store, 1);
                if coeffs.len() == n {
                    break 'outer;
                }
            }
        }
    }
    meter.leave();
    NhPoly::from_coeffs(coeffs)
}

/// Sample a noise polynomial from the centered binomial Ψ₈.
pub fn sample_noise<B: NhBackend + ?Sized>(
    backend: &mut B,
    seed: &[u8; 32],
    domain: u8,
    n: usize,
    meter: &mut dyn Meter,
) -> NhPoly {
    meter.enter(Phase::SamplePoly);
    let mut buf = vec![0u8; 2 * n];
    backend.xof_expand(seed, domain, &mut buf, meter);
    let mut coeffs = Vec::with_capacity(n);
    for pair in buf.chunks_exact(2) {
        let a = pair[0].count_ones();
        let b = pair[1].count_ones();
        let c = (a + NEWHOPE_Q - b) % NEWHOPE_Q;
        coeffs.push(c as u16);
        // Popcount via lookup + subtraction + wrap.
        meter.charge(Op::Load, 4);
        meter.charge(Op::Alu, 4);
        meter.charge(Op::Store, 1);
        meter.charge(Op::LoopIter, 1);
    }
    meter.leave();
    NhPoly::from_coeffs(coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SoftwareBackend;
    use lac_meter::NullMeter;

    #[test]
    fn gen_a_deterministic_and_uniform_ish() {
        let mut b = SoftwareBackend::new();
        let a1 = gen_a(&mut b, &[9u8; 32], 1024, &mut NullMeter);
        let a2 = gen_a(&mut b, &[9u8; 32], 1024, &mut NullMeter);
        assert_eq!(a1, a2);
        let mean: f64 = a1.coeffs().iter().map(|&c| f64::from(c)).sum::<f64>() / 1024.0;
        assert!((5000.0..7300.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn noise_is_centered_and_small() {
        let mut b = SoftwareBackend::new();
        let e = sample_noise(&mut b, &[3u8; 32], 1, 1024, &mut NullMeter);
        let q = NEWHOPE_Q as i32;
        let mut sum = 0i64;
        for &c in e.coeffs() {
            let centered = if i32::from(c) > q / 2 {
                i32::from(c) - q
            } else {
                i32::from(c)
            };
            assert!(centered.abs() <= 8, "binomial k=8 bound");
            sum += i64::from(centered);
        }
        let mean = sum as f64 / 1024.0;
        assert!(mean.abs() < 0.6, "mean {mean}");
    }

    #[test]
    fn different_domains_give_independent_noise() {
        let mut b = SoftwareBackend::new();
        let e1 = sample_noise(&mut b, &[3u8; 32], 1, 256, &mut NullMeter);
        let e2 = sample_noise(&mut b, &[3u8; 32], 2, 256, &mut NullMeter);
        assert_ne!(e1, e2);
    }
}
