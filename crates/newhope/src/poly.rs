//! Polynomials over Z₁₂₂₈₉ with NewHope's wire formats.
//!
//! Keys pack 14-bit coefficients (4 per 7 bytes); the ciphertext's second
//! component is compressed to 3 bits per coefficient. These two formats
//! produce the byte sizes the paper quotes for NewHope in Section VI.

use crate::ntt::NEWHOPE_Q;
use lac_meter::{Meter, Op};

/// A polynomial over Z₁₂₂₈₉, fixed length n.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NhPoly {
    coeffs: Vec<u16>,
}

impl NhPoly {
    /// The zero polynomial of length n.
    pub fn zero(n: usize) -> Self {
        Self {
            coeffs: vec![0u16; n],
        }
    }

    /// Build from coefficients.
    ///
    /// # Panics
    ///
    /// Panics if a coefficient is ≥ q.
    pub fn from_coeffs(coeffs: Vec<u16>) -> Self {
        assert!(
            coeffs.iter().all(|&c| u32::from(c) < NEWHOPE_Q),
            "coefficient out of range"
        );
        Self { coeffs }
    }

    /// Length n.
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// True when degenerate (no coefficients).
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient view.
    pub fn coeffs(&self) -> &[u16] {
        &self.coeffs
    }

    /// Coefficient-wise addition mod q.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn add<M: Meter>(&self, other: &Self, meter: &mut M) -> Self {
        assert_eq!(self.len(), other.len(), "length mismatch");
        let coeffs = self
            .coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(&a, &b)| {
                let s = u32::from(a) + u32::from(b);
                (if s >= NEWHOPE_Q { s - NEWHOPE_Q } else { s }) as u16
            })
            .collect();
        meter.charge(Op::Load, 2 * self.len() as u64);
        meter.charge(Op::Alu, 2 * self.len() as u64);
        meter.charge(Op::Store, self.len() as u64);
        meter.charge(Op::LoopIter, self.len() as u64);
        Self { coeffs }
    }

    /// Coefficient-wise subtraction mod q.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn sub<M: Meter>(&self, other: &Self, meter: &mut M) -> Self {
        assert_eq!(self.len(), other.len(), "length mismatch");
        let coeffs = self
            .coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(&a, &b)| {
                if a >= b {
                    a - b
                } else {
                    (u32::from(a) + NEWHOPE_Q - u32::from(b)) as u16
                }
            })
            .collect();
        meter.charge(Op::Load, 2 * self.len() as u64);
        meter.charge(Op::Alu, 2 * self.len() as u64);
        meter.charge(Op::Store, self.len() as u64);
        meter.charge(Op::LoopIter, self.len() as u64);
        Self { coeffs }
    }

    /// Pack into 14-bit wire format (4 coefficients per 7 bytes), charging
    /// the packing cost.
    ///
    /// # Panics
    ///
    /// Panics if n is not a multiple of 4.
    pub fn to_bytes14<M: Meter>(&self, meter: &mut M) -> Vec<u8> {
        assert_eq!(self.len() % 4, 0, "length must be a multiple of 4");
        let mut out = Vec::with_capacity(self.len() * 14 / 8);
        for chunk in self.coeffs.chunks_exact(4) {
            let c = [
                u64::from(chunk[0]),
                u64::from(chunk[1]),
                u64::from(chunk[2]),
                u64::from(chunk[3]),
            ];
            let packed = c[0] | (c[1] << 14) | (c[2] << 28) | (c[3] << 42);
            out.extend_from_slice(&packed.to_le_bytes()[..7]);
        }
        meter.charge(Op::Load, self.len() as u64);
        meter.charge(Op::Alu, 2 * self.len() as u64);
        meter.charge(Op::Store, (self.len() * 14 / 8) as u64);
        meter.charge(Op::LoopIter, (self.len() / 4) as u64);
        out
    }

    /// Unpack from the 14-bit wire format.
    ///
    /// Returns `None` if the byte length is wrong or a coefficient is ≥ q.
    pub fn from_bytes14(bytes: &[u8], n: usize) -> Option<Self> {
        if bytes.len() != n * 14 / 8 || n % 4 != 0 {
            return None;
        }
        let mut coeffs = Vec::with_capacity(n);
        for group in bytes.chunks_exact(7) {
            let mut raw = [0u8; 8];
            raw[..7].copy_from_slice(group);
            let packed = u64::from_le_bytes(raw);
            for k in 0..4 {
                let c = ((packed >> (14 * k)) & 0x3fff) as u16;
                if u32::from(c) >= NEWHOPE_Q {
                    return None;
                }
                coeffs.push(c);
            }
        }
        Some(Self { coeffs })
    }

    /// Compress each coefficient to 3 bits: ⌊c·8/q⌉ mod 8 (NewHope's
    /// ciphertext compression), packed 8 coefficients per 3 bytes.
    ///
    /// # Panics
    ///
    /// Panics if n is not a multiple of 8.
    pub fn compress3<M: Meter>(&self, meter: &mut M) -> Vec<u8> {
        assert_eq!(self.len() % 8, 0, "length must be a multiple of 8");
        let mut out = Vec::with_capacity(self.len() * 3 / 8);
        for chunk in self.coeffs.chunks_exact(8) {
            let mut packed = 0u32;
            for (k, &c) in chunk.iter().enumerate() {
                let v = ((u64::from(c) * 8 + u64::from(NEWHOPE_Q) / 2) / u64::from(NEWHOPE_Q))
                    as u32
                    & 0x7;
                packed |= v << (3 * k);
            }
            out.extend_from_slice(&packed.to_le_bytes()[..3]);
        }
        meter.charge(Op::Load, self.len() as u64);
        meter.charge(Op::Mul, self.len() as u64);
        meter.charge(Op::Alu, 4 * self.len() as u64);
        meter.charge(Op::Store, (self.len() * 3 / 8) as u64);
        meter.charge(Op::LoopIter, (self.len() / 8) as u64);
        out
    }

    /// Decompress a 3-bit-compressed polynomial: c ↦ ⌊v·q/8⌉.
    ///
    /// Returns `None` on a wrong byte length.
    pub fn decompress3(bytes: &[u8], n: usize) -> Option<Self> {
        if bytes.len() != n * 3 / 8 || n % 8 != 0 {
            return None;
        }
        let mut coeffs = Vec::with_capacity(n);
        for group in bytes.chunks_exact(3) {
            let packed =
                u32::from(group[0]) | (u32::from(group[1]) << 8) | (u32::from(group[2]) << 16);
            for k in 0..8 {
                let v = (packed >> (3 * k)) & 0x7;
                let c = ((v * NEWHOPE_Q + 4) / 8) % NEWHOPE_Q;
                coeffs.push(c as u16);
            }
        }
        Some(Self { coeffs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::NullMeter;
    use lac_rand::prop;

    #[test]
    fn pack14_roundtrip() {
        let p = NhPoly::from_coeffs((0..1024u32).map(|i| (i * 11 % NEWHOPE_Q) as u16).collect());
        let bytes = p.to_bytes14(&mut NullMeter);
        assert_eq!(bytes.len(), 1792);
        assert_eq!(NhPoly::from_bytes14(&bytes, 1024).expect("parses"), p);
    }

    #[test]
    fn pack14_rejects_oversized_coefficients() {
        // Encode a raw 14-bit value ≥ q directly into the wire bytes.
        let mut bytes = vec![0u8; 7];
        bytes[0] = 0xff;
        bytes[1] = 0x3f; // coefficient 0 = 0x3fff = 16383 ≥ q
        assert!(NhPoly::from_bytes14(&bytes, 4).is_none());
    }

    #[test]
    fn compress3_bounds_error() {
        // |decompress(compress(c)) − c| ≤ q/16 (rounding to 8 buckets),
        // modulo the wrap at the top bucket.
        let p = NhPoly::from_coeffs((0..1024u32).map(|i| (i * 12 % NEWHOPE_Q) as u16).collect());
        let bytes = p.compress3(&mut NullMeter);
        assert_eq!(bytes.len(), 384);
        let back = NhPoly::decompress3(&bytes, 1024).expect("parses");
        for (&orig, &dec) in p.coeffs().iter().zip(back.coeffs()) {
            let q = NEWHOPE_Q as i64;
            let diff = (i64::from(orig) - i64::from(dec)).rem_euclid(q);
            let centered = diff.min(q - diff);
            assert!(centered <= q / 16 + 1, "c={orig} -> {dec} (err {centered})");
        }
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = NhPoly::from_coeffs(vec![0, 1, 12288, 6000]);
        let b = NhPoly::from_coeffs(vec![12288, 12288, 12288, 7000]);
        assert_eq!(a.add(&b, &mut NullMeter).sub(&b, &mut NullMeter), a);
    }

    #[test]
    fn wrong_lengths_rejected() {
        assert!(NhPoly::from_bytes14(&[0u8; 10], 1024).is_none());
        assert!(NhPoly::decompress3(&[0u8; 10], 1024).is_none());
    }

    #[test]
    fn prop_pack14_roundtrip() {
        prop::check("nh_pack14_roundtrip", 128, |rng| {
            let p = NhPoly::from_coeffs(prop::vec_u16(rng, 64, 12289));
            let bytes = p.to_bytes14(&mut NullMeter);
            prop::ensure_eq(NhPoly::from_bytes14(&bytes, 64).expect("parses"), p)
        });
    }

    #[test]
    fn prop_compress_small_error() {
        prop::check("nh_compress_small_error", 128, |rng| {
            let p = NhPoly::from_coeffs(prop::vec_u16(rng, 32, 12289));
            let back = NhPoly::decompress3(&p.compress3(&mut NullMeter), 32).expect("parses");
            for (&orig, &dec) in p.coeffs().iter().zip(back.coeffs()) {
                let q = NEWHOPE_Q as i64;
                let diff = (i64::from(orig) - i64::from(dec)).rem_euclid(q);
                let centered = diff.min(q - diff);
                prop::ensure(centered <= q / 16 + 1, "decompression error too large")?;
            }
            Ok(())
        });
    }
}
