//! Execution backends for the NewHope baseline: pure software vs the
//! co-processor configuration of reference \[8\] (NTT accelerator + Keccak
//! accelerator, loosely coupled).

use crate::ntt::Ntt;
use crate::ntt_unit::NttUnit;
use lac_hw::KeccakUnit;
use lac_keccak::Sponge;
use lac_meter::Meter;

/// The substrate NewHope runs on.
pub trait NhBackend {
    /// SHAKE128 expansion of `seed ‖ domain` into `out`.
    fn xof_expand(&mut self, seed: &[u8], domain: u8, out: &mut [u8], meter: &mut dyn Meter);

    /// Forward negacyclic NTT.
    fn ntt_forward(&mut self, ntt: &Ntt, poly: &[u16], meter: &mut dyn Meter) -> Vec<u16>;

    /// Inverse negacyclic NTT.
    fn ntt_inverse(&mut self, ntt: &Ntt, values: &[u16], meter: &mut dyn Meter) -> Vec<u16>;

    /// Report label for harness output.
    fn label(&self) -> &'static str;
}

/// Pure-software NewHope (portable C cost profile).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoftwareBackend;

impl SoftwareBackend {
    /// Create the software backend.
    pub fn new() -> Self {
        Self
    }
}

impl NhBackend for SoftwareBackend {
    fn xof_expand(&mut self, seed: &[u8], domain: u8, out: &mut [u8], mut meter: &mut dyn Meter) {
        let mut sponge = Sponge::new(168, 0x1f);
        sponge.absorb_metered(seed, &mut meter);
        sponge.absorb_metered(&[domain], &mut meter);
        sponge.squeeze_metered(out, &mut meter);
    }

    fn ntt_forward(&mut self, ntt: &Ntt, poly: &[u16], mut meter: &mut dyn Meter) -> Vec<u16> {
        ntt.forward(poly, &mut meter)
    }

    fn ntt_inverse(&mut self, ntt: &Ntt, values: &[u16], mut meter: &mut dyn Meter) -> Vec<u16> {
        ntt.inverse(values, &mut meter)
    }

    fn label(&self) -> &'static str {
        "software"
    }
}

/// The \[8\] co-processor configuration: NTT and Keccak accelerators,
/// loosely coupled (bus transfers dominate the NTT unit's latency — the
/// integration style the paper contrasts with its own tightly-coupled
/// PQ-ALU).
#[derive(Debug, Clone, Default)]
pub struct AcceleratedBackend {
    ntt_unit: NttUnit,
    keccak: KeccakUnit,
}

impl AcceleratedBackend {
    /// Create the accelerated backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// The NTT accelerator model (stats/resources).
    pub fn ntt_unit(&self) -> &NttUnit {
        &self.ntt_unit
    }

    /// The Keccak accelerator model.
    pub fn keccak_unit(&self) -> &KeccakUnit {
        &self.keccak
    }
}

impl NhBackend for AcceleratedBackend {
    fn xof_expand(&mut self, seed: &[u8], domain: u8, out: &mut [u8], mut meter: &mut dyn Meter) {
        self.keccak.expand(seed, domain, out, &mut meter);
    }

    fn ntt_forward(&mut self, ntt: &Ntt, poly: &[u16], mut meter: &mut dyn Meter) -> Vec<u16> {
        self.ntt_unit.forward(ntt, poly, &mut meter)
    }

    fn ntt_inverse(&mut self, ntt: &Ntt, values: &[u16], mut meter: &mut dyn Meter) -> Vec<u16> {
        self.ntt_unit.inverse(ntt, values, &mut meter)
    }

    fn label(&self) -> &'static str {
        "opt. [8]-style"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::{CycleLedger, NullMeter};

    #[test]
    fn backends_agree_on_ntt() {
        let ntt = Ntt::new(512);
        let poly: Vec<u16> = (0..512u32).map(|i| (i * 13 % 12289) as u16).collect();
        let mut sw = SoftwareBackend::new();
        let mut hw = AcceleratedBackend::new();
        let a = sw.ntt_forward(&ntt, &poly, &mut NullMeter);
        let b = hw.ntt_forward(&ntt, &poly, &mut NullMeter);
        assert_eq!(a, b);
        assert_eq!(
            sw.ntt_inverse(&ntt, &a, &mut NullMeter),
            hw.ntt_inverse(&ntt, &b, &mut NullMeter)
        );
    }

    #[test]
    fn backends_agree_on_xof() {
        let mut sw = SoftwareBackend::new();
        let mut hw = AcceleratedBackend::new();
        let mut a = [0u8; 100];
        let mut b = [0u8; 100];
        sw.xof_expand(&[7u8; 32], 3, &mut a, &mut NullMeter);
        hw.xof_expand(&[7u8; 32], 3, &mut b, &mut NullMeter);
        assert_eq!(a, b);
    }

    #[test]
    fn accelerated_ntt_is_cheaper_than_software() {
        let ntt = Ntt::new(1024);
        let poly = vec![1u16; 1024];
        let mut sw_cost = CycleLedger::new();
        SoftwareBackend::new().ntt_forward(&ntt, &poly, &mut sw_cost);
        let mut hw_cost = CycleLedger::new();
        AcceleratedBackend::new().ntt_forward(&ntt, &poly, &mut hw_cost);
        assert!(hw_cost.total() < sw_cost.total());
        // ... but stays in the tens of thousands: loose coupling pays bus
        // transfers (the paper's [8] reports 24,609 cycles per NTT).
        assert!(
            (15_000..35_000).contains(&hw_cost.total()),
            "{}",
            hw_cost.total()
        );
    }
}
