//! The loosely-coupled NTT accelerator of reference \[8\].
//!
//! Unlike the paper's tightly-coupled PQ-ALU, \[8\] attaches its NTT engine
//! as a bus co-processor: every transform pays a full operand transfer in
//! each direction on top of the pipelined butterfly computation. \[8\]
//! reports 24,609 cycles per NTT operation at n = 1024 — reproduced here
//! as ~9 bus cycles per word each way plus one butterfly per cycle — and
//! Table III quotes its area at 886 LUTs, 618 registers, 1 BRAM and
//! 26 DSPs.

use crate::ntt::Ntt;
use lac_hw::area::{ResourceEstimate, NTT_ACCELERATOR_REF8};
use lac_meter::Meter;

/// Bus cycles per 32-bit word transferred to/from the co-processor.
pub const BUS_CYCLES_PER_WORD: u64 = 9;

/// Fixed per-invocation control overhead (descriptor setup, start, poll).
pub const SETUP_CYCLES: u64 = 700;

/// Cycle model of the \[8\]-style NTT co-processor.
#[derive(Debug, Clone, Copy, Default)]
pub struct NttUnit {
    invocations: u64,
    busy_cycles: u64,
}

impl NttUnit {
    /// Create a unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of NTT operations performed.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Datapath-busy cycles (excluding bus transfers).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Resource estimate (Table III's quoted \[8\] synthesis).
    pub fn resources(&self) -> ResourceEstimate {
        NTT_ACCELERATOR_REF8
    }

    fn charge<M: Meter + ?Sized>(&mut self, n: usize, meter: &mut M) {
        let words = n as u64; // one 14-bit coefficient per word transfer
        let compute = (n / 2) as u64 * u64::from(n.trailing_zeros());
        meter.charge_cycles(2 * words * BUS_CYCLES_PER_WORD + compute + SETUP_CYCLES);
        self.invocations += 1;
        self.busy_cycles += compute;
    }

    /// Forward NTT through the co-processor.
    pub fn forward<M: Meter + ?Sized>(
        &mut self,
        ntt: &Ntt,
        poly: &[u16],
        meter: &mut M,
    ) -> Vec<u16> {
        self.charge(ntt.n(), meter);
        ntt.forward(poly, &mut lac_meter::NullMeter)
    }

    /// Inverse NTT through the co-processor.
    pub fn inverse<M: Meter + ?Sized>(
        &mut self,
        ntt: &Ntt,
        values: &[u16],
        meter: &mut M,
    ) -> Vec<u16> {
        self.charge(ntt.n(), meter);
        ntt.inverse(values, &mut lac_meter::NullMeter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::{CycleLedger, NullMeter};

    #[test]
    fn per_ntt_cost_matches_ref8() {
        // [8]: 24,609 cycles per NTT operation at n = 1024.
        let ntt = Ntt::new(1024);
        let poly = vec![1u16; 1024];
        let mut unit = NttUnit::new();
        let mut l = CycleLedger::new();
        unit.forward(&ntt, &poly, &mut l);
        assert!(
            (22_000..27_000).contains(&l.total()),
            "{} (paper [8]: 24,609)",
            l.total()
        );
    }

    #[test]
    fn results_match_direct_ntt() {
        let ntt = Ntt::new(64);
        let poly: Vec<u16> = (0..64u32).map(|i| (i * 191 % 12289) as u16).collect();
        let mut unit = NttUnit::new();
        let via_unit = unit.forward(&ntt, &poly, &mut NullMeter);
        assert_eq!(via_unit, ntt.forward(&poly, &mut NullMeter));
        assert_eq!(unit.inverse(&ntt, &via_unit, &mut NullMeter), poly);
        assert_eq!(unit.invocations(), 2);
    }

    #[test]
    fn resources_are_quoted_ref8_numbers() {
        let r = NttUnit::new().resources();
        assert_eq!((r.luts, r.regs, r.brams, r.dsps), (886, 618, 1, 26));
    }
}
