//! NewHope — the comparison baseline of the paper's reference \[8\].
//!
//! Table II of the DATE 2020 paper compares the optimized LAC co-design
//! against "NewHope opt. \[8\]", a RISC-V co-processor accelerating the
//! Number Theoretic Transform and the Keccak-based polynomial generation.
//! To regenerate that row instead of quoting it, this crate implements the
//! baseline system from scratch:
//!
//! * [`ntt`] — the negacyclic NTT over q = 12289 (with runtime-derived
//!   roots of unity, forward/inverse, metered);
//! * [`poly`] — polynomials over Z₁₂₂₈₉ with NewHope's 14-bit key packing
//!   and 3-bit ciphertext compression (giving the paper's ‖pk‖ = 1824 and
//!   ‖ct‖ = 2176 bytes at level V);
//! * [`sample`] — SHAKE128 `GenA` and the centered-binomial noise sampler
//!   (k = 8);
//! * [`cpa`] — the CPA-secure KEM evaluated by \[8\] (encapsulation =
//!   encryption, decapsulation = decryption, no re-encryption);
//! * [`backend`] — software vs accelerated execution, the latter driving
//!   the [`ntt_unit::NttUnit`] co-processor model and `lac-hw`'s
//!   Keccak unit.
//!
//! NewHope's security (RLWE with binomial noise, no error-correcting code
//! beyond threshold encoding) and its arithmetic (NTT multiplication) are
//! exactly the features the paper contrasts with LAC's (ternary secrets,
//! BCH, add/sub multiplier), so having both systems executable makes the
//! comparison reproducible.
//!
//! # Example
//!
//! ```
//! use newhope::{CpaKem, NewHopeParams, SoftwareBackend};
//! use lac_meter::NullMeter;
//! use lac_rand::Sha256CtrRng;
//!
//! let kem = CpaKem::new(NewHopeParams::newhope1024());
//! let mut backend = SoftwareBackend::new();
//! let mut rng = Sha256CtrRng::seed_from_u64(1);
//! let (pk, sk) = kem.keygen(&mut rng, &mut backend, &mut NullMeter);
//! let (ct, k1) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);
//! let k2 = kem.decapsulate(&sk, &ct, &mut backend, &mut NullMeter);
//! assert_eq!(k1, k2);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod cpa;
pub mod ntt;
pub mod ntt_unit;
pub mod poly;
pub mod sample;

pub use backend::{AcceleratedBackend, NhBackend, SoftwareBackend};
pub use cpa::{CpaKem, NhCiphertext, NhPublicKey, NhSecretKey, NhSharedSecret};
pub use ntt::{Ntt, NEWHOPE_Q};
pub use poly::NhPoly;

/// NewHope parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NewHopeParams {
    name: &'static str,
    n: usize,
    /// Coefficients carrying each message bit (threshold encoding).
    redundancy: usize,
}

impl NewHopeParams {
    /// NewHope512 (category I).
    pub const fn newhope512() -> Self {
        Self {
            name: "NewHope512",
            n: 512,
            redundancy: 2,
        }
    }

    /// NewHope1024 (category V — the set \[8\] reports).
    pub const fn newhope1024() -> Self {
        Self {
            name: "NewHope1024",
            n: 1024,
            redundancy: 4,
        }
    }

    /// Parameter-set name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Ring dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Coefficients per message bit.
    pub fn redundancy(&self) -> usize {
        self.redundancy
    }

    /// Public-key bytes: 14-bit-packed b plus the 32-byte seed
    /// (NewHope1024: 1792 + 32 = 1824, the paper's ‖pk‖).
    pub fn public_key_bytes(&self) -> usize {
        self.n * 14 / 8 + 32
    }

    /// Secret-key bytes (14-bit-packed NTT-domain secret; NewHope1024:
    /// 1792, the paper's ‖sk‖).
    pub fn secret_key_bytes(&self) -> usize {
        self.n * 14 / 8
    }

    /// Ciphertext bytes: 14-bit-packed u plus 3-bit-compressed v
    /// (NewHope1024: 1792 + 384 = 2176, the paper's ‖ct‖).
    pub fn ciphertext_bytes(&self) -> usize {
        self.n * 14 / 8 + self.n * 3 / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper_level_v() {
        // Section VI: NewHope ‖pk‖ = 1824, ‖sk‖ = 1792, ‖ct‖ = 2176.
        let p = NewHopeParams::newhope1024();
        assert_eq!(p.public_key_bytes(), 1824);
        assert_eq!(p.secret_key_bytes(), 1792);
        assert_eq!(p.ciphertext_bytes(), 2176);
    }

    #[test]
    fn lac_keys_are_smaller() {
        // The paper's closing argument for LAC.
        let nh = NewHopeParams::newhope1024();
        assert!(1056 < nh.public_key_bytes());
        assert!(1424 < nh.ciphertext_bytes());
    }
}
