//! Keccak-f\[1600\] and the SHA-3 family, implemented from scratch.
//!
//! The DATE 2020 paper's SHA256 unit is small but slow next to the Keccak
//! accelerator of its reference \[8\]; swapping it is the paper's stated
//! future work ("Changing the SHA256 accelerator with a Keccak accelerator
//! to further increase the performance of LAC has been left for a future
//! work"). This crate provides the software substrate for that extension:
//!
//! * [`keccak_f1600`] — the permutation (24 rounds);
//! * [`Sponge`] — the sponge construction over it;
//! * [`sha3_256`] — the fixed-output hash;
//! * [`Shake128`] / [`Shake256`] — the XOFs used by NewHope-style `GenA`
//!   (one 168/136-byte rate block per permutation, versus SHA-256's 32
//!   bytes per compression — the throughput root of the paper's
//!   comparison);
//! * metered variants charging a portable-software cost per permutation.
//!
//! # Example
//!
//! ```
//! use lac_keccak::Shake128;
//!
//! let mut xof = Shake128::new();
//! xof.absorb(b"seed");
//! let mut out = [0u8; 16];
//! xof.squeeze(&mut out);
//! assert_ne!(out, [0u8; 16]);
//! ```

#![warn(missing_docs)]

use lac_meter::{Meter, NullMeter, Op};

/// Round constants for ι.
const RC: [u64; 24] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets for ρ, indexed `[x][y]`.
const RHO: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

/// Apply the Keccak-f\[1600\] permutation to the 5×5 lane state
/// (`state[x + 5*y]`, little-endian lanes).
pub fn keccak_f1600(state: &mut [u64; 25]) {
    for rc in RC {
        // θ
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }
        // ρ and π
        let mut b = [0u64; 25];
        for x in 0..5 {
            for y in 0..5 {
                b[y + 5 * ((2 * x + 3 * y) % 5)] = state[x + 5 * y].rotate_left(RHO[x][y]);
            }
        }
        // χ
        for y in 0..5 {
            for x in 0..5 {
                state[x + 5 * y] =
                    b[x + 5 * y] ^ (!b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
            }
        }
        // ι
        state[0] ^= rc;
    }
}

/// Modelled RISCY cycles for one software permutation.
///
/// Portable C Keccak-f\[1600\] on RV32 runs ~60 ops per lane per round over
/// 25 lanes × 24 rounds with 64-bit lanes emulated by register pairs; the
/// charge below (~13k cycles) matches pqm4-class figures for a
/// non-bit-interleaved implementation.
pub fn charge_permutation<M: Meter>(meter: &mut M) {
    meter.charge(Op::LoopIter, 24);
    // Per round: θ (30 xor-pairs + rotates), ρπ (25 double-rotates + moves),
    // χ (25 and/not/xor triples), all on 32-bit halves.
    meter.charge(Op::Alu, 24 * 380);
    meter.charge(Op::Load, 24 * 60);
    meter.charge(Op::Store, 24 * 50);
    meter.charge(Op::Call, 1);
}

/// A Keccak sponge with byte-granular absorb/squeeze.
#[derive(Debug, Clone)]
pub struct Sponge {
    state: [u64; 25],
    rate: usize, // bytes
    offset: usize,
    squeezing: bool,
    domain: u8,
    permutations: u64,
}

impl Sponge {
    /// Create a sponge with the given rate in bytes and domain-separation
    /// suffix bits (SHA-3: `0x06`, SHAKE: `0x1f`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero, not a multiple of 8, or ≥ 200.
    pub fn new(rate: usize, domain: u8) -> Self {
        assert!(rate > 0 && rate < 200 && rate % 8 == 0, "invalid rate");
        Self {
            state: [0u64; 25],
            rate,
            offset: 0,
            squeezing: false,
            domain,
            permutations: 0,
        }
    }

    /// Number of permutations performed so far.
    pub fn permutations(&self) -> u64 {
        self.permutations
    }

    fn xor_byte(&mut self, index: usize, byte: u8) {
        self.state[index / 8] ^= u64::from(byte) << (8 * (index % 8));
    }

    fn state_byte(&self, index: usize) -> u8 {
        (self.state[index / 8] >> (8 * (index % 8))) as u8
    }

    fn permute<M: Meter>(&mut self, meter: &mut M) {
        keccak_f1600(&mut self.state);
        charge_permutation(meter);
        self.permutations += 1;
        self.offset = 0;
    }

    /// Absorb input bytes.
    ///
    /// # Panics
    ///
    /// Panics if called after squeezing started.
    pub fn absorb(&mut self, data: &[u8]) {
        self.absorb_metered(data, &mut NullMeter);
    }

    /// Metered variant of [`Sponge::absorb`].
    ///
    /// # Panics
    ///
    /// Panics if called after squeezing started.
    pub fn absorb_metered<M: Meter>(&mut self, data: &[u8], meter: &mut M) {
        assert!(!self.squeezing, "absorb after squeeze");
        for &b in data {
            self.xor_byte(self.offset, b);
            self.offset += 1;
            if self.offset == self.rate {
                self.permute(meter);
            }
        }
        meter.charge(Op::Load, data.len() as u64);
        meter.charge(Op::Alu, data.len() as u64);
        meter.charge(Op::LoopIter, data.len() as u64);
    }

    fn pad(&mut self) {
        self.xor_byte(self.offset, self.domain);
        self.xor_byte(self.rate - 1, 0x80);
        self.squeezing = true;
    }

    /// Squeeze output bytes.
    pub fn squeeze(&mut self, out: &mut [u8]) {
        self.squeeze_metered(out, &mut NullMeter);
    }

    /// Metered variant of [`Sponge::squeeze`].
    pub fn squeeze_metered<M: Meter>(&mut self, out: &mut [u8], meter: &mut M) {
        if !self.squeezing {
            self.pad();
            self.permute(meter);
        }
        for slot in out.iter_mut() {
            if self.offset == self.rate {
                self.permute(meter);
            }
            *slot = self.state_byte(self.offset);
            self.offset += 1;
        }
        meter.charge(Op::Store, out.len() as u64);
        meter.charge(Op::LoopIter, out.len() as u64);
    }
}

/// SHAKE128 extendable-output function (rate 168).
#[derive(Debug, Clone)]
pub struct Shake128(Sponge);

impl Default for Shake128 {
    fn default() -> Self {
        Self::new()
    }
}

impl Shake128 {
    /// Fresh XOF.
    pub fn new() -> Self {
        Self(Sponge::new(168, 0x1f))
    }

    /// Absorb input (must precede all squeezes).
    pub fn absorb(&mut self, data: &[u8]) {
        self.0.absorb(data);
    }

    /// Squeeze output.
    pub fn squeeze(&mut self, out: &mut [u8]) {
        self.0.squeeze(out);
    }

    /// Access the underlying sponge (metered use, statistics).
    pub fn sponge_mut(&mut self) -> &mut Sponge {
        &mut self.0
    }
}

/// SHAKE256 extendable-output function (rate 136).
#[derive(Debug, Clone)]
pub struct Shake256(Sponge);

impl Default for Shake256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Shake256 {
    /// Fresh XOF.
    pub fn new() -> Self {
        Self(Sponge::new(136, 0x1f))
    }

    /// Absorb input (must precede all squeezes).
    pub fn absorb(&mut self, data: &[u8]) {
        self.0.absorb(data);
    }

    /// Squeeze output.
    pub fn squeeze(&mut self, out: &mut [u8]) {
        self.0.squeeze(out);
    }

    /// Access the underlying sponge (metered use, statistics).
    pub fn sponge_mut(&mut self) -> &mut Sponge {
        &mut self.0
    }
}

/// One-shot SHA3-256.
///
/// # Example
///
/// ```
/// let d = lac_keccak::sha3_256(b"");
/// assert_eq!(d[0], 0xa7);
/// ```
pub fn sha3_256(data: &[u8]) -> [u8; 32] {
    sha3_256_metered(data, &mut NullMeter)
}

/// Metered one-shot SHA3-256.
pub fn sha3_256_metered<M: Meter>(data: &[u8], meter: &mut M) -> [u8; 32] {
    let mut sponge = Sponge::new(136, 0x06);
    sponge.absorb_metered(data, meter);
    let mut out = [0u8; 32];
    sponge.squeeze_metered(&mut out, meter);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::CycleLedger;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // NIST FIPS 202 known-answer vectors.
    #[test]
    fn sha3_256_empty() {
        assert_eq!(
            hex(&sha3_256(b"")),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
        );
    }

    #[test]
    fn sha3_256_abc() {
        assert_eq!(
            hex(&sha3_256(b"abc")),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
        );
    }

    #[test]
    fn shake128_empty() {
        let mut xof = Shake128::new();
        xof.absorb(b"");
        let mut out = [0u8; 32];
        xof.squeeze(&mut out);
        assert_eq!(
            hex(&out),
            "7f9c2ba4e88f827d616045507605853ed73b8093f6efbc88eb1a6eacfa66ef26"
        );
    }

    #[test]
    fn shake256_empty() {
        let mut xof = Shake256::new();
        xof.absorb(b"");
        let mut out = [0u8; 32];
        xof.squeeze(&mut out);
        assert_eq!(
            hex(&out),
            "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f"
        );
    }

    #[test]
    fn shake128_abc_prefix() {
        // SHAKE128("abc"), first 16 bytes (NIST example value).
        let mut xof = Shake128::new();
        xof.absorb(b"abc");
        let mut out = [0u8; 16];
        xof.squeeze(&mut out);
        assert_eq!(hex(&out), "5881092dd818bf5cf8a3ddb793fbcba7");
    }

    #[test]
    fn multi_block_absorb_matches_single() {
        let data = vec![0x5au8; 500]; // crosses the 168-byte rate repeatedly
        let mut one = Shake128::new();
        one.absorb(&data);
        let mut streamed = Shake128::new();
        for chunk in data.chunks(7) {
            streamed.absorb(chunk);
        }
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        one.squeeze(&mut a);
        streamed.squeeze(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn incremental_squeeze_matches_bulk() {
        let mut bulk = Shake256::new();
        bulk.absorb(b"seed");
        let mut expect = [0u8; 300];
        bulk.squeeze(&mut expect);

        let mut step = Shake256::new();
        step.absorb(b"seed");
        let mut got = vec![0u8; 300];
        for chunk in got.chunks_mut(11) {
            step.squeeze(chunk);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn permutation_count_tracks_rate() {
        let mut xof = Shake128::new();
        xof.absorb(&[0u8; 168 * 2]); // exactly two full blocks absorbed
        assert_eq!(xof.sponge_mut().permutations(), 2);
        let mut out = [0u8; 200]; // pad-permute + one more for > 168 bytes
        xof.squeeze(&mut out);
        assert_eq!(xof.sponge_mut().permutations(), 4);
    }

    #[test]
    fn metered_cost_scales_with_permutations() {
        let mut small = CycleLedger::new();
        sha3_256_metered(&[0u8; 10], &mut small); // 1 permutation
        let mut large = CycleLedger::new();
        sha3_256_metered(&[0u8; 136 * 3], &mut large); // 4 permutations
        assert!(large.total() > 3 * small.total());
        // Sanity: ~13k cycles per permutation, far more throughput per
        // permutation than SHA-256 per block.
        assert!(small.total() > 8_000 && small.total() < 20_000);
    }

    #[test]
    #[should_panic(expected = "absorb after squeeze")]
    fn absorb_after_squeeze_panics() {
        let mut xof = Shake128::new();
        let mut out = [0u8; 1];
        xof.squeeze(&mut out);
        xof.absorb(b"late");
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn invalid_rate_rejected() {
        Sponge::new(200, 0x1f);
    }
}
