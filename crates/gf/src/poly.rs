//! Polynomials over GF(2^m) and over GF(2).
//!
//! [`GfPoly`] carries field-element coefficients (error-locator polynomials,
//! minimal-polynomial construction); [`BinPoly`] is a dense bit-packed
//! polynomial over GF(2) (BCH generator polynomials, codeword arithmetic).

use crate::Field;

/// A polynomial with coefficients in a [`Field`], lowest degree first.
///
/// The representation is normalized: no trailing zero coefficients (the zero
/// polynomial is an empty coefficient vector).
///
/// # Example
///
/// ```
/// use lac_gf::{poly::GfPoly, Field};
///
/// let gf = Field::gf512();
/// let p = GfPoly::from_coeffs(&[1, 0, 3]); // 1 + 3x²
/// assert_eq!(p.degree(), Some(2));
/// assert_eq!(p.eval(&gf, 1), 1 ^ 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GfPoly {
    coeffs: Vec<u16>,
}

impl GfPoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { coeffs: Vec::new() }
    }

    /// The constant polynomial 1.
    pub fn one() -> Self {
        Self { coeffs: vec![1] }
    }

    /// The monomial `c·x^k`.
    pub fn monomial(c: u16, k: usize) -> Self {
        if c == 0 {
            return Self::zero();
        }
        let mut coeffs = vec![0u16; k + 1];
        coeffs[k] = c;
        Self { coeffs }
    }

    /// Build from coefficients, lowest degree first (trailing zeros trimmed).
    pub fn from_coeffs(coeffs: &[u16]) -> Self {
        let mut coeffs = coeffs.to_vec();
        while coeffs.last() == Some(&0) {
            coeffs.pop();
        }
        Self { coeffs }
    }

    /// Coefficient view, lowest degree first.
    pub fn coeffs(&self) -> &[u16] {
        &self.coeffs
    }

    /// The coefficient of x^k (0 beyond the degree).
    pub fn coeff(&self, k: usize) -> u16 {
        self.coeffs.get(k).copied().unwrap_or(0)
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Is this the zero polynomial?
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Polynomial addition (characteristic 2: also subtraction).
    pub fn add(&self, other: &Self) -> Self {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![0u16; n];
        for (i, c) in out.iter_mut().enumerate() {
            *c = self.coeff(i) ^ other.coeff(i);
        }
        Self::from_coeffs(&out)
    }

    /// Polynomial multiplication in the given field.
    pub fn mul(&self, other: &Self, gf: &Field) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u16; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] ^= gf.mul(a, b);
            }
        }
        Self::from_coeffs(&out)
    }

    /// Multiply by the scalar `c`.
    pub fn scale(&self, c: u16, gf: &Field) -> Self {
        let out: Vec<u16> = self.coeffs.iter().map(|&a| gf.mul(a, c)).collect();
        Self::from_coeffs(&out)
    }

    /// Evaluate at `x` by Horner's rule.
    pub fn eval(&self, gf: &Field, x: u16) -> u16 {
        let mut acc = 0u16;
        for &c in self.coeffs.iter().rev() {
            acc = gf.mul(acc, x) ^ c;
        }
        acc
    }
}

/// A dense polynomial over GF(2), bit-packed (bit i of word i/64 = coefficient
/// of xⁱ).
///
/// # Example
///
/// ```
/// use lac_gf::poly::BinPoly;
///
/// let g = BinPoly::from_bits(&[1, 0, 1, 1]); // 1 + x² + x³
/// assert_eq!(g.degree(), Some(3));
/// let x5 = BinPoly::monomial(5);
/// let (_, r) = x5.div_rem(&g);
/// assert!(r.degree() < g.degree());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BinPoly {
    words: Vec<u64>,
}

impl BinPoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { words: Vec::new() }
    }

    /// The monomial x^k.
    pub fn monomial(k: usize) -> Self {
        let mut p = Self::zero();
        p.set(k, true);
        p
    }

    /// Build from bits, lowest degree first.
    pub fn from_bits(bits: &[u8]) -> Self {
        let mut p = Self::zero();
        for (i, &b) in bits.iter().enumerate() {
            assert!(b <= 1, "bits must be 0 or 1");
            if b == 1 {
                p.set(i, true);
            }
        }
        p
    }

    /// Coefficient of xⁱ.
    pub fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| (w >> (i % 64)) & 1 == 1)
    }

    /// Set the coefficient of xⁱ.
    pub fn set(&mut self, i: usize, value: bool) {
        let word = i / 64;
        if word >= self.words.len() {
            if !value {
                return;
            }
            self.words.resize(word + 1, 0);
        }
        if value {
            self.words[word] |= 1u64 << (i % 64);
        } else {
            self.words[word] &= !(1u64 << (i % 64));
        }
        self.trim();
    }

    fn trim(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        let last = *self.words.last()?;
        Some((self.words.len() - 1) * 64 + (63 - last.leading_zeros() as usize))
    }

    /// Is this the zero polynomial?
    pub fn is_zero(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of nonzero coefficients.
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Addition over GF(2) (XOR).
    pub fn add(&self, other: &Self) -> Self {
        let n = self.words.len().max(other.words.len());
        let mut words = vec![0u64; n];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.words.get(i).copied().unwrap_or(0) ^ other.words.get(i).copied().unwrap_or(0);
        }
        let mut p = Self { words };
        p.trim();
        p
    }

    /// Shift left: multiply by x^k.
    pub fn shl(&self, k: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let mut out = Self::zero();
        let deg = self.degree().expect("nonzero");
        for i in 0..=deg {
            if self.get(i) {
                out.set(i + k, true);
            }
        }
        out
    }

    /// Carry-less multiplication over GF(2).
    pub fn mul(&self, other: &Self) -> Self {
        let mut out = Self::zero();
        let Some(deg) = self.degree() else {
            return out;
        };
        for i in 0..=deg {
            if self.get(i) {
                out = out.add(&other.shl(i));
            }
        }
        out
    }

    /// Polynomial division: returns `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        let d_deg = divisor.degree().expect("division by zero polynomial");
        let mut rem = self.clone();
        let mut quot = Self::zero();
        while let Some(r_deg) = rem.degree() {
            if r_deg < d_deg {
                break;
            }
            let shift = r_deg - d_deg;
            quot.set(shift, true);
            rem = rem.add(&divisor.shl(shift));
        }
        (quot, rem)
    }

    /// Remainder modulo `divisor`.
    pub fn rem(&self, divisor: &Self) -> Self {
        self.div_rem(divisor).1
    }

    /// The coefficients as bits, lowest degree first, exactly `len` entries.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial has degree ≥ `len`.
    pub fn to_bits(&self, len: usize) -> Vec<u8> {
        if let Some(d) = self.degree() {
            assert!(d < len, "polynomial degree {d} does not fit in {len} bits");
        }
        (0..len).map(|i| u8::from(self.get(i))).collect()
    }
}

/// The cyclotomic coset of `i` modulo `n` (orbit of i under doubling):
/// `{i, 2i, 4i, …} mod n`, sorted.
pub fn cyclotomic_coset(n: u32, i: u32) -> Vec<u32> {
    let mut coset = Vec::new();
    let mut j = i % n;
    loop {
        coset.push(j);
        j = (j * 2) % n;
        if j == i % n {
            break;
        }
    }
    coset.sort_unstable();
    coset
}

/// The minimal polynomial of α^i over GF(2): ∏_{j ∈ C_i} (x − α^j).
///
/// The result always has coefficients in {0,1}; it is returned as a
/// [`BinPoly`].
///
/// # Panics
///
/// Panics if `i` is not in `1..2^m − 1` range semantics (i = 0 gives the
/// minimal polynomial of 1, which is x + 1 — allowed).
pub fn minimal_polynomial(gf: &Field, i: u32) -> BinPoly {
    let coset = cyclotomic_coset(u32::from(gf.order()), i);
    let mut acc = GfPoly::one();
    for &j in &coset {
        // (x + α^j) — addition is subtraction in characteristic 2.
        let factor = GfPoly::from_coeffs(&[gf.exp(j), 1]);
        acc = acc.mul(&factor, gf);
    }
    let mut out = BinPoly::zero();
    for (k, &c) in acc.coeffs().iter().enumerate() {
        assert!(c <= 1, "minimal polynomial must have binary coefficients");
        if c == 1 {
            out.set(k, true);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_rand::{prop, Rng};

    fn gf() -> Field {
        Field::gf512()
    }

    #[test]
    fn gfpoly_degree_and_trim() {
        assert_eq!(GfPoly::zero().degree(), None);
        assert_eq!(GfPoly::from_coeffs(&[0, 0, 0]).degree(), None);
        assert_eq!(GfPoly::from_coeffs(&[5]).degree(), Some(0));
        assert_eq!(GfPoly::from_coeffs(&[1, 2, 0]).degree(), Some(1));
    }

    #[test]
    fn gfpoly_add_is_xor_of_coeffs() {
        let a = GfPoly::from_coeffs(&[1, 2, 3]);
        let b = GfPoly::from_coeffs(&[3, 2, 1]);
        assert_eq!(a.add(&b), GfPoly::from_coeffs(&[2, 0, 2]));
    }

    #[test]
    fn gfpoly_add_cancels_leading_terms() {
        let a = GfPoly::from_coeffs(&[1, 0, 7]);
        let b = GfPoly::from_coeffs(&[0, 0, 7]);
        assert_eq!(a.add(&b).degree(), Some(0));
    }

    #[test]
    fn gfpoly_mul_degree_adds() {
        let f = gf();
        let a = GfPoly::from_coeffs(&[1, 1]); // 1 + x
        let b = GfPoly::from_coeffs(&[1, 0, 1]); // 1 + x²
        let c = a.mul(&b, &f);
        assert_eq!(c.degree(), Some(3));
        // (1+x)(1+x²) = 1 + x + x² + x³ over GF(2) ⊂ GF(2^9).
        assert_eq!(c, GfPoly::from_coeffs(&[1, 1, 1, 1]));
    }

    #[test]
    fn gfpoly_eval_horner() {
        let f = gf();
        // p(x) = 3 + 5x + 7x²  at x = α.
        let p = GfPoly::from_coeffs(&[3, 5, 7]);
        let x = f.exp(1);
        let direct = 3 ^ f.mul(5, x) ^ f.mul(7, f.mul(x, x));
        assert_eq!(p.eval(&f, x), direct);
    }

    #[test]
    fn gfpoly_eval_roots_of_factor() {
        let f = gf();
        // (x + α^5)(x + α^9) must vanish at α^5 and α^9.
        let p = GfPoly::from_coeffs(&[f.exp(5), 1]).mul(&GfPoly::from_coeffs(&[f.exp(9), 1]), &f);
        assert_eq!(p.eval(&f, f.exp(5)), 0);
        assert_eq!(p.eval(&f, f.exp(9)), 0);
        assert_ne!(p.eval(&f, f.exp(6)), 0);
    }

    #[test]
    fn gfpoly_scale() {
        let f = gf();
        let p = GfPoly::from_coeffs(&[1, 2, 3]);
        let s = p.scale(f.exp(4), &f);
        for k in 0..3 {
            assert_eq!(s.coeff(k), f.mul(p.coeff(k), f.exp(4)));
        }
    }

    #[test]
    fn binpoly_basics() {
        let p = BinPoly::from_bits(&[1, 0, 1, 1]);
        assert_eq!(p.degree(), Some(3));
        assert!(p.get(0) && !p.get(1) && p.get(2) && p.get(3));
        assert_eq!(p.weight(), 3);
        assert_eq!(BinPoly::zero().degree(), None);
    }

    #[test]
    fn binpoly_set_clear_trims() {
        let mut p = BinPoly::monomial(100);
        p.set(100, false);
        assert!(p.is_zero());
    }

    #[test]
    fn binpoly_mul_matches_known_product() {
        // (1 + x)(1 + x + x²) = 1 + x³ over GF(2).
        let a = BinPoly::from_bits(&[1, 1]);
        let b = BinPoly::from_bits(&[1, 1, 1]);
        assert_eq!(a.mul(&b), BinPoly::from_bits(&[1, 0, 0, 1]));
    }

    #[test]
    fn binpoly_div_rem_reconstructs() {
        let a = BinPoly::from_bits(&[1, 0, 1, 1, 0, 1, 1, 0, 1]);
        let d = BinPoly::from_bits(&[1, 1, 0, 1]);
        let (q, r) = a.div_rem(&d);
        assert!(r.degree() < d.degree());
        assert_eq!(q.mul(&d).add(&r), a);
    }

    #[test]
    fn binpoly_to_bits_roundtrip() {
        let bits = [1u8, 0, 0, 1, 1, 0, 1];
        let p = BinPoly::from_bits(&bits);
        assert_eq!(p.to_bits(7), bits.to_vec());
        assert_eq!(p.to_bits(9)[7..], [0, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn binpoly_to_bits_too_small_panics() {
        BinPoly::monomial(8).to_bits(8);
    }

    #[test]
    fn coset_of_one_mod_511() {
        // C_1 = {1, 2, 4, 8, 16, 32, 64, 128, 256}: 9 elements (m = 9).
        let c = cyclotomic_coset(511, 1);
        assert_eq!(c, vec![1, 2, 4, 8, 16, 32, 64, 128, 256]);
    }

    #[test]
    fn cosets_partition() {
        // Cosets are disjoint and cover 1..511 (plus {0}).
        let mut seen = vec![false; 511];
        let mut total = 0;
        for i in 1..511u32 {
            if seen[i as usize] {
                continue;
            }
            for j in cyclotomic_coset(511, i) {
                assert!(!seen[j as usize], "element {j} in two cosets");
                seen[j as usize] = true;
                total += 1;
            }
        }
        assert_eq!(total, 510);
    }

    #[test]
    fn minimal_polynomial_of_alpha_is_field_poly() {
        // The minimal polynomial of α is the primitive polynomial itself.
        let f = gf();
        let m1 = minimal_polynomial(&f, 1);
        assert_eq!(m1, BinPoly::from_bits(&[1, 0, 0, 0, 1, 0, 0, 0, 0, 1]));
    }

    #[test]
    fn minimal_polynomial_annihilates_whole_coset() {
        let f = gf();
        for i in [1u32, 3, 5, 7, 9] {
            let mp = minimal_polynomial(&f, i);
            // Evaluate the binary polynomial at α^j for every j in C_i.
            for j in cyclotomic_coset(511, i) {
                let mut acc = 0u16;
                let x = f.exp(j);
                for k in (0..=mp.degree().unwrap()).rev() {
                    acc = f.mul(acc, x) ^ u16::from(mp.get(k));
                }
                assert_eq!(acc, 0, "m_{i}(α^{j}) != 0");
            }
        }
    }

    #[test]
    fn minimal_polynomial_of_zero_power() {
        // α^0 = 1 has minimal polynomial x + 1.
        let f = gf();
        assert_eq!(minimal_polynomial(&f, 0), BinPoly::from_bits(&[1, 1]));
    }

    #[test]
    fn prop_binpoly_div_rem_invariant() {
        prop::check("binpoly_div_rem_invariant", 128, |rng| {
            let a_len = rng.gen_range_usize(1..128);
            let d_len = rng.gen_range_usize(1..32);
            let a = BinPoly::from_bits(&prop::vec_u8(rng, a_len, 2));
            let mut d = BinPoly::from_bits(&prop::vec_u8(rng, d_len, 2));
            if d.is_zero() {
                d = BinPoly::monomial(0);
            }
            let (q, r) = a.div_rem(&d);
            prop::ensure_eq(q.mul(&d).add(&r), a)?;
            if let (Some(rd), Some(dd)) = (r.degree(), d.degree()) {
                prop::ensure(rd < dd, "remainder degree not below divisor")?;
            }
            Ok(())
        });
    }

    #[test]
    fn prop_gfpoly_mul_commutative() {
        prop::check("gfpoly_mul_commutative", 128, |rng| {
            let a_len = rng.gen_below_usize(12);
            let b_len = rng.gen_below_usize(12);
            let f = Field::gf512();
            let pa = GfPoly::from_coeffs(&prop::vec_u16(rng, a_len, 512));
            let pb = GfPoly::from_coeffs(&prop::vec_u16(rng, b_len, 512));
            prop::ensure_eq(pa.mul(&pb, &f), pb.mul(&pa, &f))
        });
    }

    #[test]
    fn prop_gfpoly_eval_is_ring_hom() {
        prop::check("gfpoly_eval_is_ring_hom", 128, |rng| {
            let a_len = rng.gen_below_usize(10);
            let b_len = rng.gen_below_usize(10);
            let f = Field::gf512();
            let pa = GfPoly::from_coeffs(&prop::vec_u16(rng, a_len, 512));
            let pb = GfPoly::from_coeffs(&prop::vec_u16(rng, b_len, 512));
            let x = prop::vec_u16(rng, 1, 512)[0];
            // eval(a*b) = eval(a)*eval(b), eval(a+b) = eval(a)+eval(b)
            prop::ensure_eq(
                pa.mul(&pb, &f).eval(&f, x),
                f.mul(pa.eval(&f, x), pb.eval(&f, x)),
            )?;
            prop::ensure_eq(pa.add(&pb).eval(&f, x), pa.eval(&f, x) ^ pb.eval(&f, x))
        });
    }
}
