//! Systematic BCH codes over GF(2⁹) with variable-time and constant-time
//! decoders, as used by LAC.
//!
//! LAC hides each message under lattice noise and relies on a strong binary
//! BCH code to remove the residual errors after decryption:
//!
//! * BCH(511, 367, t = 16) for LAC-128 and LAC-256,
//! * BCH(511, 439, t = 8) for LAC-192,
//!
//! both *shortened* to a 256-bit message (only the low 256 data bits are
//! used; the remaining data positions are fixed to zero and never
//! transmitted).
//!
//! Two decoders are provided, mirroring the two implementations measured in
//! Table I of the DATE 2020 paper:
//!
//! * [`BchCode::decode_variable_time`] — the NIST 2nd-round-submission style
//!   decoder: early-exit Berlekamp–Massey and an early-exit Chien search.
//!   Its modelled cycle count **depends on the error pattern**, which is the
//!   timing side channel of D'Anvers et al.;
//! * [`BchCode::decode_constant_time`] — a Walters–Roy style decoder:
//!   branchless syndromes over the full code length, a fixed-iteration
//!   inversion-free Berlekamp–Massey, and a full-range Chien search. Its
//!   modelled cycle count is **independent of the error pattern**.
//!
//! Both decoders share the same algebra and correct up to `t` errors.
//!
//! # Example
//!
//! ```
//! use lac_bch::BchCode;
//! use lac_meter::NullMeter;
//!
//! let code = BchCode::lac_t16();
//! let msg = [0x5au8; 32];
//! let mut cw = code.encode(&msg, &mut NullMeter);
//! cw[10] ^= 1; // inject a parity error
//! cw[200] ^= 1; // and a message error
//! let out = code.decode_constant_time(&cw, &mut NullMeter);
//! assert_eq!(out.message, msg);
//! ```

#![warn(missing_docs)]

mod constant_time;
mod variable_time;

pub use constant_time::CtDecoded;
pub use variable_time::VtDecoded;

/// Constant-time decoder building blocks, re-exported for the
/// hardware-accelerated decode pipeline (software syndromes and
/// Berlekamp–Massey feeding the *MUL CHIEN* unit).
pub mod ct {
    pub use crate::constant_time::{berlekamp_massey, syndromes};
}

use lac_gf::poly::{cyclotomic_coset, minimal_polynomial, BinPoly};
use lac_gf::Field;
use lac_meter::{Meter, Op, Phase};

/// Number of message bytes carried by the shortened code (LAC plaintext).
pub const MESSAGE_BYTES: usize = 32;

/// Number of message bits carried by the shortened code.
pub const MESSAGE_BITS: usize = 8 * MESSAGE_BYTES;

/// A binary BCH code over GF(2⁹), shortened to a 256-bit message.
///
/// Codeword layout (one bit per `u8`, index = polynomial degree):
/// positions `0..parity_len()` hold the parity bits, positions
/// `parity_len()..parity_len()+256` hold the message bits. Higher positions
/// of the full 511-bit code are shortened away (always zero).
#[derive(Debug, Clone)]
pub struct BchCode {
    gf: Field,
    n: usize,
    k: usize,
    t: usize,
    generator: BinPoly,
    /// Generator polynomial bits, lowest degree first, length `n - k + 1`.
    generator_bits: Vec<u8>,
}

impl BchCode {
    /// Construct a narrow-sense binary BCH code of length 2^m − 1 correcting
    /// `t` errors, over the given field.
    ///
    /// The generator polynomial is the least common multiple of the minimal
    /// polynomials of α¹ … α^2t, computed from cyclotomic cosets.
    ///
    /// # Panics
    ///
    /// Panics if the resulting dimension k is smaller than 256 bits (the
    /// shortened message would not fit) or if `t` is zero.
    pub fn new(gf: Field, t: usize) -> Self {
        assert!(t > 0, "t must be positive");
        let n = gf.order() as usize;
        // g(x) = lcm of minimal polynomials of α^1..α^{2t}; collect distinct
        // cyclotomic cosets to avoid repeating factors.
        let mut covered = vec![false; n];
        let mut generator = BinPoly::monomial(0); // 1
        for i in 1..=(2 * t as u32) {
            let rep = (i as usize) % n;
            if covered[rep] {
                continue;
            }
            for j in cyclotomic_coset(n as u32, i) {
                covered[j as usize] = true;
            }
            generator = generator.mul(&minimal_polynomial(&gf, i));
        }
        let deg = generator.degree().expect("generator is nonzero");
        let k = n - deg;
        assert!(
            k >= MESSAGE_BITS,
            "code dimension {k} cannot carry a {MESSAGE_BITS}-bit message"
        );
        let generator_bits = generator.to_bits(deg + 1);
        Self {
            gf,
            n,
            k,
            t,
            generator,
            generator_bits,
        }
    }

    /// The BCH(511, 367, 16) code used by LAC-128 and LAC-256.
    pub fn lac_t16() -> Self {
        let code = Self::new(Field::gf512(), 16);
        debug_assert_eq!((code.n, code.k), (511, 367));
        code
    }

    /// The BCH(511, 439, 8) code used by LAC-192.
    pub fn lac_t8() -> Self {
        let code = Self::new(Field::gf512(), 8);
        debug_assert_eq!((code.n, code.k), (511, 439));
        code
    }

    /// Full (unshortened) code length n = 2^m − 1.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Code dimension k (information bits of the unshortened code).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Maximum number of correctable errors.
    pub fn t(&self) -> usize {
        self.t
    }

    /// The underlying Galois field.
    pub fn field(&self) -> &Field {
        &self.gf
    }

    /// The generator polynomial g(x).
    pub fn generator(&self) -> &BinPoly {
        &self.generator
    }

    /// Number of parity bits, n − k.
    pub fn parity_len(&self) -> usize {
        self.n - self.k
    }

    /// Length of the shortened codeword actually transmitted:
    /// `parity_len() + 256`.
    pub fn codeword_len(&self) -> usize {
        self.parity_len() + MESSAGE_BITS
    }

    /// Range of Chien-search exponents covering exactly the message bits of
    /// the shortened codeword (the paper's α¹¹²…α³⁶⁸ / α¹⁸⁴…α⁴⁴⁰ window).
    ///
    /// An error at codeword position `p` corresponds to a root `α^(n−p)` of
    /// the error locator, so message positions `parity_len()..parity_len()+255`
    /// map to exponents `n − parity_len() − 255 ..= n − parity_len()`.
    pub fn chien_window(&self) -> std::ops::RangeInclusive<u32> {
        let hi = (self.n - self.parity_len()) as u32;
        let lo = hi - (MESSAGE_BITS as u32 - 1);
        lo..=hi
    }

    /// Systematically encode a 256-bit message.
    ///
    /// Returns `codeword_len()` bits (one per `u8`, values 0/1): parity bits
    /// first, then the message bits (LSB-first within each byte).
    ///
    /// The parity is computed with an LFSR division by g(x). The cost
    /// charged to `meter` (under [`Phase::BchEncode`]) models the
    /// reference implementation's **table-driven byte-wise** encoder: per
    /// message byte, one 256-entry table lookup plus an `r`-bit register
    /// shift-xor handled word-wise — a fixed operation sequence independent
    /// of the message bits.
    pub fn encode<M: Meter>(&self, message: &[u8; MESSAGE_BYTES], meter: &mut M) -> Vec<u8> {
        meter.enter(Phase::BchEncode);
        let r = self.parity_len();
        // LFSR register holds the running remainder of m(x)·x^r mod g(x).
        let mut lfsr = vec![0u8; r];
        // Feed message bits highest degree first (position k-1 .. 0); the
        // shortened positions (>= 256) are zero and contribute nothing, so
        // the software encoder skips them — as the LAC reference code does.
        for bit_index in (0..MESSAGE_BITS).rev() {
            let bit = (message[bit_index / 8] >> (bit_index % 8)) & 1;
            let feedback = bit ^ lfsr[r - 1];
            for j in (1..r).rev() {
                lfsr[j] = lfsr[j - 1] ^ (feedback & self.generator_bits[j]);
            }
            lfsr[0] = feedback & self.generator_bits[0];
        }
        // Cost model (byte-wise table-driven encoder): per message byte,
        // a table index computation, the parity-table load, and an
        // (r/32 + 1)-word register shift-xor.
        let words = (r as u64).div_ceil(32) + 1;
        for _ in 0..MESSAGE_BYTES {
            meter.charge(Op::Load, 2); // message byte + table entry
            meter.charge(Op::Alu, 3); // index xor/shift
            meter.charge(Op::Load, words);
            meter.charge(Op::Alu, 2 * words);
            meter.charge(Op::Store, words);
            meter.charge(Op::LoopIter, 1);
        }
        let mut cw = vec![0u8; self.codeword_len()];
        cw[..r].copy_from_slice(&lfsr);
        for i in 0..MESSAGE_BITS {
            cw[r + i] = (message[i / 8] >> (i % 8)) & 1;
        }
        meter.charge(Op::Store, self.codeword_len() as u64);
        meter.leave();
        cw
    }

    /// Extract the (possibly corrected) message bits from a codeword buffer.
    pub fn message_of(&self, cw: &[u8]) -> [u8; MESSAGE_BYTES] {
        let r = self.parity_len();
        let mut msg = [0u8; MESSAGE_BYTES];
        for i in 0..MESSAGE_BITS {
            msg[i / 8] |= (cw[r + i] & 1) << (i % 8);
        }
        msg
    }

    /// Check that `cw` is a valid codeword (divisible by g(x)). Test helper;
    /// not used on the decode hot path.
    pub fn is_codeword(&self, cw: &[u8]) -> bool {
        assert_eq!(cw.len(), self.codeword_len());
        let p = BinPoly::from_bits(cw);
        p.rem(&self.generator).is_zero()
    }

    /// Decode with the variable-time (submission-style) decoder.
    ///
    /// See [`variable_time`](VtDecoded) for the result fields. Cycle costs
    /// are charged to `meter` under the `BchSyndrome` / `BchErrorLocator` /
    /// `BchChien` / `BchGlue` phases.
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != codeword_len()`.
    pub fn decode_variable_time<M: Meter>(&self, received: &[u8], meter: &mut M) -> VtDecoded {
        variable_time::decode(self, received, meter)
    }

    /// Decode with the constant-time (Walters–Roy style) decoder.
    ///
    /// The sequence of modelled operations is independent of the error
    /// pattern. See [`constant_time`](CtDecoded) for the result fields.
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != codeword_len()`.
    pub fn decode_constant_time<M: Meter>(&self, received: &[u8], meter: &mut M) -> CtDecoded {
        constant_time::decode(self, received, meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::NullMeter;

    #[test]
    fn t16_parameters_match_paper() {
        let c = BchCode::lac_t16();
        assert_eq!(c.n(), 511);
        assert_eq!(c.k(), 367);
        assert_eq!(c.t(), 16);
        assert_eq!(c.parity_len(), 144);
        assert_eq!(c.codeword_len(), 400);
        assert_eq!(c.chien_window(), 112..=367);
    }

    #[test]
    fn t8_parameters_match_paper() {
        let c = BchCode::lac_t8();
        assert_eq!(c.n(), 511);
        assert_eq!(c.k(), 439);
        assert_eq!(c.t(), 8);
        assert_eq!(c.parity_len(), 72);
        assert_eq!(c.codeword_len(), 328);
        assert_eq!(c.chien_window(), 184..=439);
    }

    #[test]
    fn generator_divides_x_n_minus_1() {
        for code in [BchCode::lac_t8(), BchCode::lac_t16()] {
            // x^511 + 1 must be divisible by g(x).
            let mut xn1 = BinPoly::monomial(511);
            xn1.set(0, true);
            assert!(xn1.rem(code.generator()).is_zero());
        }
    }

    #[test]
    fn generator_has_designed_roots() {
        // g(α^i) = 0 for i = 1..2t (the defining property of the BCH bound).
        let code = BchCode::lac_t16();
        let gf = code.field();
        let g = code.generator();
        let deg = g.degree().unwrap();
        for i in 1..=32u32 {
            let x = gf.exp(i);
            let mut acc = 0u16;
            for kk in (0..=deg).rev() {
                acc = gf.mul(acc, x) ^ u16::from(g.get(kk));
            }
            assert_eq!(acc, 0, "g(α^{i}) != 0");
        }
    }

    #[test]
    fn encode_produces_valid_codeword() {
        for code in [BchCode::lac_t8(), BchCode::lac_t16()] {
            let msg = [0xc3u8; 32];
            let cw = code.encode(&msg, &mut NullMeter);
            assert_eq!(cw.len(), code.codeword_len());
            assert!(cw.iter().all(|&b| b <= 1));
            assert!(code.is_codeword(&cw));
            assert_eq!(code.message_of(&cw), msg);
        }
    }

    #[test]
    fn encode_is_systematic() {
        let code = BchCode::lac_t16();
        let mut msg = [0u8; 32];
        msg[0] = 0b1010_0101;
        msg[31] = 0xff;
        let cw = code.encode(&msg, &mut NullMeter);
        let r = code.parity_len();
        assert_eq!(cw[r], 1); // bit 0 of msg[0]
        assert_eq!(cw[r + 1], 0);
        assert_eq!(cw[r + 2], 1);
        for i in 0..8 {
            assert_eq!(cw[r + 248 + i], 1); // msg[31] = 0xff
        }
    }

    #[test]
    fn encode_zero_message_is_all_zero() {
        let code = BchCode::lac_t16();
        let cw = code.encode(&[0u8; 32], &mut NullMeter);
        assert!(cw.iter().all(|&b| b == 0));
    }

    #[test]
    fn encode_is_linear() {
        // encode(a) XOR encode(b) = encode(a XOR b) for systematic linear codes.
        let code = BchCode::lac_t8();
        let a = [0x12u8; 32];
        let b = [0xb7u8; 32];
        let mut ab = [0u8; 32];
        for i in 0..32 {
            ab[i] = a[i] ^ b[i];
        }
        let ca = code.encode(&a, &mut NullMeter);
        let cb = code.encode(&b, &mut NullMeter);
        let cab = code.encode(&ab, &mut NullMeter);
        let xored: Vec<u8> = ca.iter().zip(&cb).map(|(x, y)| x ^ y).collect();
        assert_eq!(xored, cab);
    }

    #[test]
    fn encode_cost_is_metered() {
        let code = BchCode::lac_t16();
        let mut ledger = lac_meter::CycleLedger::new();
        code.encode(&[0xaau8; 32], &mut ledger);
        assert!(ledger.phase_total(Phase::BchEncode) > 0);
        assert_eq!(ledger.total(), ledger.phase_total(Phase::BchEncode));
    }

    #[test]
    #[should_panic(expected = "t must be positive")]
    fn zero_t_rejected() {
        BchCode::new(Field::gf512(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot carry")]
    fn too_large_t_rejected() {
        // t = 60 pushes k below 256.
        BchCode::new(Field::gf512(), 60);
    }

    #[test]
    fn prop_roundtrip_under_random_errors() {
        use lac_rand::{prop, Rng};
        prop::check("bch_roundtrip_under_random_errors", 24, |rng| {
            for code in [BchCode::lac_t8(), BchCode::lac_t16()] {
                let mut msg = [0u8; 32];
                rng.fill_bytes(&mut msg);
                let mut cw = code.encode(&msg, &mut NullMeter);
                for p in prop::distinct_positions(rng, code.codeword_len(), code.t()) {
                    cw[p] ^= 1;
                }
                let vt = code.decode_variable_time(&cw, &mut NullMeter);
                let ct = code.decode_constant_time(&cw, &mut NullMeter);
                prop::ensure_eq(vt.message, msg)?;
                prop::ensure_eq(ct.message, msg)?;
            }
            Ok(())
        });
    }
}
