//! The constant-time (Walters–Roy style) BCH decoder.
//!
//! Every step performs a **fixed sequence of modelled operations**,
//! independent of the received word's contents:
//!
//! * syndromes: branch-free masked accumulation over every transmitted bit;
//! * error locator: inversion-free Berlekamp–Massey running all 2t
//!   iterations with branchless select of the update path;
//! * Chien search: full scan of the shortened codeword range, evaluating all
//!   t+1 locator terms with the bit-serial shift-and-add multiplication (the
//!   same dataflow as the paper's MUL GF hardware) — this is the step the
//!   paper accelerates, because it dominates the constant-time budget
//!   (Table I: 380k of 514k cycles);
//! * corrections: branchless conditional flip at every position.
//!
//! The decoded result equals the variable-time decoder's for any pattern of
//! up to t errors; only the cost model (and the real-world leakage) differs.

use crate::{BchCode, MESSAGE_BYTES};
use lac_meter::{Meter, Op, Phase};

/// Result of a constant-time decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtDecoded {
    /// The corrected 256-bit message.
    pub message: [u8; MESSAGE_BYTES],
    /// Degree of the error-locator polynomial (estimated error count).
    pub locator_degree: usize,
    /// Number of locator roots found inside the scanned range.
    pub errors_located: usize,
}

impl CtDecoded {
    /// `true` when every error announced by the locator was located.
    pub fn likely_ok(&self) -> bool {
        self.errors_located == self.locator_degree
    }
}

/// Branch-free syndrome computation over the shortened codeword.
///
/// For each syndrome index i, walks all transmitted positions accumulating
/// `mask(r_p) & α^(i·p)` with an incrementally maintained exponent. The
/// charge per (syndrome, position) pair is fixed.
///
/// Public so that the hardware-accelerated decoder (constant-time software
/// syndromes + software Berlekamp–Massey + *MUL CHIEN* search) can reuse it.
pub fn syndromes<M: Meter>(code: &BchCode, received: &[u8], meter: &mut M) -> Vec<u16> {
    let gf = code.field();
    let two_t = 2 * code.t();
    let order = u32::from(gf.order());
    let len = code.codeword_len();
    let mut s = vec![0u16; two_t];
    for (i, si) in s.iter_mut().enumerate() {
        let step = (i + 1) as u32;
        let mut idx = 0u32;
        let mut acc = 0u16;
        for &bit in received.iter().take(len) {
            let mask = (bit as u16).wrapping_neg();
            acc ^= mask & gf.exp(idx);
            idx += step;
            // Branchless wrap: idx ∈ [0, 2·order) before this line.
            idx -= order & ((idx >= order) as u32).wrapping_neg();
            meter.charge(Op::Load, 1);
            meter.charge(Op::Alu, 3);
            meter.charge(Op::LoopIter, 1);
        }
        *si = acc;
        meter.charge(Op::Store, 1);
        meter.charge(Op::LoopIter, 1);
    }
    s
}

/// Inversion-free Berlekamp–Massey, fixed 2t iterations, branchless updates.
///
/// Produces a scalar multiple of the error-locator polynomial (same roots,
/// same degree). Coefficient arrays have fixed length t+1.
///
/// Public so that the hardware-accelerated decoder can reuse it.
pub fn berlekamp_massey<M: Meter>(code: &BchCode, s: &[u16], meter: &mut M) -> Vec<u16> {
    let gf = code.field();
    let t = code.t();
    let two_t = 2 * t;
    let mut lambda = vec![0u16; t + 2];
    let mut b = vec![0u16; t + 2];
    lambda[0] = 1;
    b[0] = 1;
    let mut gamma: u16 = 1;
    let mut k: i32 = 0;

    for r in 0..two_t {
        // δ = Σ_{i=0}^{t} λ_i · S_{r−i} with a fixed t+1-term charge.
        let mut delta = 0u16;
        for i in 0..=t {
            let s_val = if i <= r { s[r - i] } else { 0 };
            delta ^= gf.mul_masked_metered(lambda[i], s_val, meter);
            meter.charge(Op::Load, 2);
            meter.charge(Op::Alu, 1);
            meter.charge(Op::LoopIter, 1);
        }
        // λ_new = γ·λ − δ·x·b  (fixed t+2-term charge)
        let mut lambda_new = vec![0u16; t + 2];
        for i in 0..=t + 1 {
            let shifted_b = if i > 0 { b[i - 1] } else { 0 };
            lambda_new[i] = gf.mul_masked_metered(gamma, lambda[i], meter)
                ^ gf.mul_masked_metered(delta, shifted_b, meter);
            meter.charge(Op::Load, 2);
            meter.charge(Op::Alu, 1);
            meter.charge(Op::Store, 1);
            meter.charge(Op::LoopIter, 1);
        }
        // Branchless control: swap = (δ ≠ 0) ∧ (k ≥ 0).
        let swap = delta != 0 && k >= 0;
        let mask = (swap as u16).wrapping_neg();
        // Downward iteration: b[i] consumes b[i−1] (the x·b shift), so the
        // write order must not clobber unread entries.
        for i in (0..=t + 1).rev() {
            let shifted_b = if i > 0 { b[i - 1] } else { 0 };
            b[i] = (mask & lambda[i]) | (!mask & shifted_b);
            meter.charge(Op::Load, 2);
            meter.charge(Op::Alu, 3);
            meter.charge(Op::Store, 1);
            meter.charge(Op::LoopIter, 1);
        }
        gamma = (mask & delta) | (!mask & gamma);
        k = if swap { -k - 1 } else { k + 1 };
        meter.charge(Op::Alu, 6);
        lambda = lambda_new;
        meter.charge(Op::LoopIter, 1);
    }

    // Fixed-trace degree extraction: scan all coefficients.
    let mut degree = 0usize;
    for (i, &c) in lambda.iter().enumerate() {
        let nz = (c != 0) as usize;
        degree = nz * i + (1 - nz) * degree;
        meter.charge(Op::Load, 1);
        meter.charge(Op::Alu, 3);
        meter.charge(Op::LoopIter, 1);
    }
    lambda.truncate(degree + 1);
    lambda
}

/// Constant-time Chien search over the shortened codeword range.
///
/// Evaluates Λ(α^l) for every l covering transmitted positions, stepping all
/// t+1 terms with the shift-and-add GF multiplication (fixed m iterations
/// each). Returns a branchlessly-built error mask per position, plus the
/// root count.
fn chien<M: Meter>(code: &BchCode, lambda: &[u16], meter: &mut M) -> (Vec<u8>, usize) {
    let gf = code.field();
    let n = code.n();
    let t = code.t();
    let len = code.codeword_len();
    let lo = (n - (len - 1)) as u32; // exponent of the highest stored position

    // terms[j] = λ_j · α^(j·lo) initially; stepping multiplies by α^j.
    let mut terms = vec![0u16; t + 1];
    for (j, term) in terms.iter_mut().enumerate() {
        let lam = lambda.get(j).copied().unwrap_or(0);
        *term = gf.mul(lam, gf.pow(gf.exp(1), (j as u32) * lo));
        meter.charge(Op::Load, 3);
        meter.charge(Op::Alu, 2);
        meter.charge(Op::Store, 1);
        meter.charge(Op::LoopIter, 1);
    }

    let mut error_mask = vec![0u8; len];
    let mut roots = 0usize;
    for l in lo..=(n as u32) {
        let mut acc = 0u16;
        for term in terms.iter() {
            acc ^= term;
            meter.charge(Op::Load, 1);
            meter.charge(Op::Alu, 1);
            meter.charge(Op::LoopIter, 1);
        }
        let is_root = (acc == 0) as u8;
        let p = n - l as usize;
        error_mask[p] = is_root;
        roots += usize::from(is_root);
        meter.charge(Op::Alu, 4);
        meter.charge(Op::Store, 1);
        // Step all terms with the constant-time shift-and-add multiplier —
        // the software analogue of the MUL GF datapath (and the cost the
        // paper's MUL CHIEN unit eliminates).
        for (j, term) in terms.iter_mut().enumerate().skip(1) {
            *term = gf.mul_shift_add_metered(*term, gf.exp(j as u32), meter);
            meter.charge(Op::Load, 1);
            meter.charge(Op::Store, 1);
            meter.charge(Op::LoopIter, 1);
        }
        meter.charge(Op::LoopIter, 1);
    }
    (error_mask, roots)
}

pub(crate) fn decode<M: Meter>(code: &BchCode, received: &[u8], meter: &mut M) -> CtDecoded {
    assert_eq!(
        received.len(),
        code.codeword_len(),
        "received word has wrong length"
    );

    meter.enter(Phase::BchSyndrome);
    let s = syndromes(code, received, meter);
    meter.leave();

    meter.enter(Phase::BchErrorLocator);
    let lambda = berlekamp_massey(code, &s, meter);
    meter.leave();

    meter.enter(Phase::BchChien);
    let locator_degree = lambda.len() - 1;
    let (error_mask, errors_located) = chien(code, &lambda, meter);
    meter.leave();

    meter.enter(Phase::BchGlue);
    // Branchless conditional flip at every position.
    let mut corrected = received.to_vec();
    for (c, &e) in corrected.iter_mut().zip(error_mask.iter()) {
        *c ^= e;
        meter.charge(Op::Load, 2);
        meter.charge(Op::Alu, 1);
        meter.charge(Op::Store, 1);
        meter.charge(Op::LoopIter, 1);
    }
    let message = code.message_of(&corrected);
    meter.charge(Op::Load, crate::MESSAGE_BITS as u64);
    meter.charge(Op::Alu, crate::MESSAGE_BITS as u64);
    meter.leave();

    CtDecoded {
        message,
        locator_degree,
        errors_located,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::{CycleLedger, NullMeter};

    fn flip(cw: &mut [u8], positions: &[usize]) {
        for &p in positions {
            cw[p] ^= 1;
        }
    }

    #[test]
    fn decodes_error_free_word() {
        let code = BchCode::lac_t16();
        let msg = [0x81u8; 32];
        let cw = code.encode(&msg, &mut NullMeter);
        let out = code.decode_constant_time(&cw, &mut NullMeter);
        assert_eq!(out.message, msg);
        assert_eq!(out.locator_degree, 0);
        assert!(out.likely_ok());
    }

    #[test]
    fn corrects_single_error_anywhere() {
        let code = BchCode::lac_t8();
        let msg = [0x5du8; 32];
        let clean = code.encode(&msg, &mut NullMeter);
        for p in (0..code.codeword_len()).step_by(13) {
            let mut cw = clean.clone();
            cw[p] ^= 1;
            let out = code.decode_constant_time(&cw, &mut NullMeter);
            assert_eq!(out.message, msg, "error at {p}");
            assert!(out.likely_ok());
        }
    }

    #[test]
    fn corrects_t_errors_both_codes() {
        for (code, step) in [(BchCode::lac_t8(), 40), (BchCode::lac_t16(), 24)] {
            let t = code.t();
            let positions: Vec<usize> = (0..t).map(|i| 2 + i * step).collect();
            let msg = [0xe7u8; 32];
            let mut cw = code.encode(&msg, &mut NullMeter);
            flip(&mut cw, &positions);
            let out = code.decode_constant_time(&cw, &mut NullMeter);
            assert_eq!(out.message, msg);
            assert_eq!(out.locator_degree, t);
            assert_eq!(out.errors_located, t);
        }
    }

    #[test]
    fn agrees_with_variable_time_decoder() {
        let code = BchCode::lac_t16();
        let msg = [0x2fu8; 32];
        let clean = code.encode(&msg, &mut NullMeter);
        for errors in [0usize, 1, 2, 5, 9, 16] {
            let mut cw = clean.clone();
            let positions: Vec<usize> = (0..errors).map(|i| 7 + i * 23).collect();
            flip(&mut cw, &positions);
            let ct = code.decode_constant_time(&cw, &mut NullMeter);
            let vt = code.decode_variable_time(&cw, &mut NullMeter);
            assert_eq!(ct.message, vt.message, "{errors} errors");
            assert_eq!(ct.locator_degree, vt.locator_degree);
        }
    }

    #[test]
    fn cycle_count_is_input_independent() {
        // The core claim of Walters et al. (and the reason the paper adopts
        // this decoder): identical modelled cost for 0 and t errors.
        let code = BchCode::lac_t16();
        let t = code.t();
        let mut totals = Vec::new();
        for errors in [0usize, 1, t / 2, t] {
            let msg = [0x99u8; 32];
            let mut cw = code.encode(&msg, &mut NullMeter);
            let positions: Vec<usize> = (0..errors).map(|i| 11 + i * 19).collect();
            flip(&mut cw, &positions);
            let mut ledger = CycleLedger::new();
            code.decode_constant_time(&cw, &mut ledger);
            totals.push(ledger.total());
        }
        assert!(
            totals.windows(2).all(|w| w[0] == w[1]),
            "constant-time decode leaked: {totals:?}"
        );
    }

    #[test]
    fn per_phase_costs_are_input_independent() {
        let code = BchCode::lac_t8();
        let msg = [0u8; 32];
        let clean = code.encode(&msg, &mut NullMeter);
        let mut dirty = clean.clone();
        flip(&mut dirty, &[3, 77, 150, 220, 290, 310, 320, 327]);

        let mut a = CycleLedger::new();
        code.decode_constant_time(&clean, &mut a);
        let mut b = CycleLedger::new();
        code.decode_constant_time(&dirty, &mut b);
        for phase in [
            Phase::BchSyndrome,
            Phase::BchErrorLocator,
            Phase::BchChien,
            Phase::BchGlue,
        ] {
            assert_eq!(
                a.phase_total(phase),
                b.phase_total(phase),
                "phase {phase} leaked"
            );
        }
    }

    #[test]
    fn chien_dominates_constant_time_budget() {
        // Table I shape: Chien ≈ 3/4 of the Walters decode budget.
        let code = BchCode::lac_t16();
        let cw = code.encode(&[1u8; 32], &mut NullMeter);
        let mut l = CycleLedger::new();
        code.decode_constant_time(&cw, &mut l);
        assert!(l.phase_total(Phase::BchChien) > l.total() / 2);
    }

    #[test]
    fn ct_decode_costs_more_than_vt() {
        // Constant time is bought with cycles (~3x in the paper).
        let code = BchCode::lac_t16();
        let cw = code.encode(&[0xabu8; 32], &mut NullMeter);
        let mut ct = CycleLedger::new();
        code.decode_constant_time(&cw, &mut ct);
        let mut vt = CycleLedger::new();
        code.decode_variable_time(&cw, &mut vt);
        assert!(ct.total() > vt.total());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn wrong_length_rejected() {
        let code = BchCode::lac_t8();
        code.decode_constant_time(&[0u8; 400], &mut NullMeter);
    }
}
