//! The variable-time (NIST-submission style) BCH decoder.
//!
//! This decoder mirrors the structure and the *timing behaviour* of the BCH
//! decoder shipped with the 2nd-round LAC submission, which Table I of the
//! paper shows to be non-constant-time despite its countermeasure compile
//! flag:
//!
//! * syndromes are accumulated only for the **set bits** of the received
//!   word (cost follows the word's Hamming weight);
//! * Berlekamp–Massey takes a cheap early-out on zero discrepancies, so an
//!   error-free word costs a few hundred modelled cycles where a 16-error
//!   word costs ~10k (the paper's 158 vs 10,172);
//! * the Chien search walks the full exponent range evaluating a fixed
//!   `t+1`-term array with zero-skipping table multiplications.
//!
//! The modelled cycle count therefore **leaks the error pattern** — this is
//! exactly the D'Anvers-et-al. side channel the constant-time decoder
//! removes.

use crate::{BchCode, MESSAGE_BYTES};
use lac_meter::{Meter, Op, Phase};

/// Result of a variable-time decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VtDecoded {
    /// The corrected 256-bit message.
    pub message: [u8; MESSAGE_BYTES],
    /// Degree of the error-locator polynomial (estimated error count).
    pub locator_degree: usize,
    /// Roots of the locator actually found by the Chien search.
    pub errors_located: usize,
}

impl VtDecoded {
    /// `true` when the decode is internally consistent: every error the
    /// locator polynomial announces was located (and corrected).
    pub fn likely_ok(&self) -> bool {
        self.errors_located == self.locator_degree
    }
}

/// Compute the 2t syndromes S_i = r(α^i), i = 1..=2t, the submission way:
/// iterate over codeword positions and accumulate `α^(i·p)` for set bits
/// only. Cost is proportional to the received word's Hamming weight.
fn syndromes<M: Meter>(code: &BchCode, received: &[u8], meter: &mut M) -> Vec<u16> {
    let gf = code.field();
    let two_t = 2 * code.t();
    let order = u32::from(gf.order());
    let mut s = vec![0u16; two_t];
    for (p, &bit) in received.iter().enumerate() {
        meter.charge(Op::Load, 1);
        meter.charge(Op::Branch, 1);
        meter.charge(Op::LoopIter, 1);
        if bit == 0 {
            continue;
        }
        // idx walks i·p mod (2^m − 1) incrementally: add p per syndrome.
        let mut idx = 0u32;
        for si in s.iter_mut() {
            idx += p as u32;
            if idx >= order {
                idx -= order;
            }
            *si ^= gf.exp(idx);
            meter.charge(Op::Alu, 3); // index add, wrap compare/sub, xor
            meter.charge(Op::Branch, 1);
            meter.charge(Op::Load, 2); // alog table + syndrome load
            meter.charge(Op::Store, 1);
            meter.charge(Op::LoopIter, 1);
        }
    }
    s
}

/// Standard Berlekamp–Massey with early outs (variable time).
///
/// Returns the error-locator polynomial Λ as coefficients `[λ0=1, λ1, …]`.
fn berlekamp_massey<M: Meter>(code: &BchCode, s: &[u16], meter: &mut M) -> Vec<u16> {
    let gf = code.field();
    let two_t = s.len();
    let mut lambda = vec![0u16; two_t + 1];
    let mut prev = vec![0u16; two_t + 1];
    lambda[0] = 1;
    prev[0] = 1;
    let mut l: usize = 0; // current LFSR length
    let mut m: usize = 1; // gap since last length change
    let mut b: u16 = 1; // last nonzero discrepancy

    for r in 0..two_t {
        // Discrepancy δ = Σ_{i=0}^{L} λ_i · S_{r−i}.
        let mut delta = s[r];
        meter.charge(Op::Load, 1);
        for i in 1..=l {
            delta ^= gf.mul_metered(lambda[i], s[r - i], meter);
            meter.charge(Op::Load, 2);
            meter.charge(Op::Alu, 1);
            meter.charge(Op::LoopIter, 1);
        }
        meter.charge(Op::Branch, 1);
        meter.charge(Op::LoopIter, 1);
        if delta == 0 {
            // Cheap early-out: nothing to update.
            m += 1;
            meter.charge(Op::Alu, 1);
            continue;
        }
        // t(x) = Λ(x) − (δ/b)·x^m·B(x)
        let coef = gf.mul_metered(delta, gf.inv(b), meter);
        meter.charge(Op::Load, 1); // inverse table
        let mut t_poly = lambda.clone();
        meter.charge(Op::Load, (two_t + 1) as u64);
        meter.charge(Op::Store, (two_t + 1) as u64);
        for i in 0..=two_t - m.min(two_t) {
            if i + m > two_t {
                break;
            }
            t_poly[i + m] ^= gf.mul_metered(coef, prev[i], meter);
            meter.charge(Op::Load, 2);
            meter.charge(Op::Alu, 1);
            meter.charge(Op::Store, 1);
            meter.charge(Op::LoopIter, 1);
        }
        meter.charge(Op::Branch, 1);
        if 2 * l <= r {
            l = r + 1 - l;
            prev = lambda;
            b = delta;
            m = 1;
            meter.charge(Op::Alu, 3);
        } else {
            m += 1;
            meter.charge(Op::Alu, 1);
        }
        lambda = t_poly;
    }
    lambda.truncate(l + 1);
    lambda
}

/// Chien search: walk the full exponent range 1..=n, evaluating Λ(α^l) with a
/// fixed (t+1)-term array. Term stepping is done in the log domain
/// (`idx_j += j`, antilog lookup), whose cost is independent of the λ values
/// — which is why Table I shows near-identical Chien cycles for 0 and 16
/// errors in the submission decoder. Roots at exponent l flag an error at
/// codeword position n − l.
///
/// Returns the located error positions (within the stored shortened buffer).
fn chien<M: Meter>(code: &BchCode, lambda: &[u16], meter: &mut M) -> Vec<usize> {
    let gf = code.field();
    let n = code.n();
    let t = code.t();
    // terms[j] tracks λ_j · α^(j·l); start at l = 1.
    let mut terms = vec![0u16; t + 1];
    for (j, term) in terms.iter_mut().enumerate() {
        let lam = lambda.get(j).copied().unwrap_or(0);
        *term = gf.mul(lam, gf.exp(j as u32));
        meter.charge(Op::Load, 3);
        meter.charge(Op::Alu, 2);
        meter.charge(Op::Store, 1);
        meter.charge(Op::LoopIter, 1);
    }
    let mut positions = Vec::new();
    for l in 1..=n as u32 {
        // Λ(α^l) = λ0 + Σ terms[j]
        let mut acc = lambda[0];
        for term in terms.iter().skip(1) {
            acc ^= term;
            meter.charge(Op::Load, 1);
            meter.charge(Op::Alu, 1);
            meter.charge(Op::LoopIter, 1);
        }
        meter.charge(Op::Branch, 1);
        if acc == 0 {
            let p = n - l as usize;
            if p < code.codeword_len() {
                positions.push(p);
            }
            meter.charge(Op::Alu, 2);
            meter.charge(Op::Store, 1);
        }
        // Advance every term by its constant: terms[j] *= α^j, charged as a
        // log-domain step (index add + wrap + antilog load + store).
        for (j, term) in terms.iter_mut().enumerate().skip(1) {
            *term = gf.mul(*term, gf.exp(j as u32));
            meter.charge(Op::Alu, 2);
            meter.charge(Op::Load, 1);
            meter.charge(Op::Store, 1);
            meter.charge(Op::LoopIter, 1);
        }
        meter.charge(Op::LoopIter, 1);
    }
    positions
}

pub(crate) fn decode<M: Meter>(code: &BchCode, received: &[u8], meter: &mut M) -> VtDecoded {
    assert_eq!(
        received.len(),
        code.codeword_len(),
        "received word has wrong length"
    );

    meter.enter(Phase::BchSyndrome);
    let s = syndromes(code, received, meter);
    meter.leave();

    meter.enter(Phase::BchErrorLocator);
    let lambda = berlekamp_massey(code, &s, meter);
    meter.leave();

    meter.enter(Phase::BchChien);
    let locator_degree = lambda.len() - 1;
    // The submission code walks the Chien search unconditionally — even for
    // a degree-0 locator (Table I: ~107k cycles at zero errors too).
    let positions = chien(code, &lambda, meter);
    meter.leave();

    meter.enter(Phase::BchGlue);
    let mut corrected = received.to_vec();
    for &p in &positions {
        corrected[p] ^= 1;
        meter.charge(Op::Load, 1);
        meter.charge(Op::Alu, 1);
        meter.charge(Op::Store, 1);
    }
    let message = code.message_of(&corrected);
    meter.charge(Op::Load, crate::MESSAGE_BITS as u64);
    meter.charge(Op::Alu, crate::MESSAGE_BITS as u64);
    meter.leave();

    VtDecoded {
        message,
        locator_degree,
        errors_located: positions.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::{CycleLedger, NullMeter};

    fn flip(cw: &mut [u8], positions: &[usize]) {
        for &p in positions {
            cw[p] ^= 1;
        }
    }

    #[test]
    fn decodes_error_free_word() {
        let code = BchCode::lac_t16();
        let msg = [0x3cu8; 32];
        let cw = code.encode(&msg, &mut NullMeter);
        let out = code.decode_variable_time(&cw, &mut NullMeter);
        assert_eq!(out.message, msg);
        assert_eq!(out.locator_degree, 0);
        assert!(out.likely_ok());
    }

    #[test]
    fn corrects_single_error_anywhere() {
        let code = BchCode::lac_t8();
        let msg = [0x77u8; 32];
        let clean = code.encode(&msg, &mut NullMeter);
        for p in (0..code.codeword_len()).step_by(17) {
            let mut cw = clean.clone();
            cw[p] ^= 1;
            let out = code.decode_variable_time(&cw, &mut NullMeter);
            assert_eq!(out.message, msg, "error at {p}");
            assert_eq!(out.locator_degree, 1);
            assert!(out.likely_ok());
        }
    }

    #[test]
    fn corrects_t_errors() {
        for (code, positions) in [
            (BchCode::lac_t8(), vec![0, 50, 100, 150, 200, 250, 300, 327]),
            (
                BchCode::lac_t16(),
                (0..16).map(|i| 3 + i * 24).collect::<Vec<_>>(),
            ),
        ] {
            let msg = [0xa5u8; 32];
            let mut cw = code.encode(&msg, &mut NullMeter);
            flip(&mut cw, &positions);
            let out = code.decode_variable_time(&cw, &mut NullMeter);
            assert_eq!(out.message, msg);
            assert_eq!(out.locator_degree, positions.len());
            assert_eq!(out.errors_located, positions.len());
        }
    }

    #[test]
    fn detects_overload_beyond_t() {
        // t+2 errors: decoding must not silently claim success with a wrong
        // message AND likely_ok true in the common case. (BCH can miscorrect,
        // but for this fixed pattern it reports inconsistency.)
        let code = BchCode::lac_t8();
        let msg = [0x11u8; 32];
        let mut cw = code.encode(&msg, &mut NullMeter);
        flip(&mut cw, &[1, 31, 61, 91, 121, 151, 181, 211, 241, 271]);
        let out = code.decode_variable_time(&cw, &mut NullMeter);
        // The strong assertion: with ≤ t errors it never fails, checked in
        // other tests; here we only require no panic and a defined result
        // of the right shape.
        assert_eq!(out.message.len(), msg.len());
    }

    #[test]
    fn zero_errors_cheaper_than_max_errors_in_error_locator() {
        // The Table I shape: submission-style BM is ~64x cheaper with zero
        // errors (158 vs 10,172 cycles).
        let code = BchCode::lac_t16();
        let msg = [0x42u8; 32];
        let clean = code.encode(&msg, &mut NullMeter);

        let mut l0 = CycleLedger::new();
        code.decode_variable_time(&clean, &mut l0);

        let mut dirty = clean.clone();
        flip(&mut dirty, &(0..16).map(|i| 5 + i * 20).collect::<Vec<_>>());
        let mut l16 = CycleLedger::new();
        code.decode_variable_time(&dirty, &mut l16);

        let bm0 = l0.phase_total(Phase::BchErrorLocator);
        let bm16 = l16.phase_total(Phase::BchErrorLocator);
        assert!(
            bm16 > 10 * bm0,
            "BM cost must leak error count: {bm0} vs {bm16}"
        );
        // Total decode differs too (the leak the paper demonstrates).
        assert_ne!(l0.total(), l16.total());
    }

    #[test]
    fn syndrome_cost_tracks_word_weight() {
        let code = BchCode::lac_t16();
        let light = code.encode(&[0u8; 32], &mut NullMeter); // all-zero codeword
        let heavy = code.encode(&[0xffu8; 32], &mut NullMeter);
        let mut ll = CycleLedger::new();
        code.decode_variable_time(&light, &mut ll);
        let mut lh = CycleLedger::new();
        code.decode_variable_time(&heavy, &mut lh);
        assert!(lh.phase_total(Phase::BchSyndrome) > ll.phase_total(Phase::BchSyndrome));
    }

    #[test]
    fn phases_are_all_charged() {
        let code = BchCode::lac_t16();
        let mut cw = code.encode(&[9u8; 32], &mut NullMeter);
        cw[100] ^= 1;
        let mut l = CycleLedger::new();
        code.decode_variable_time(&cw, &mut l);
        for phase in [
            Phase::BchSyndrome,
            Phase::BchErrorLocator,
            Phase::BchChien,
            Phase::BchGlue,
        ] {
            assert!(l.phase_total(phase) > 0, "phase {phase} uncharged");
        }
        let sum: u64 = [
            Phase::BchSyndrome,
            Phase::BchErrorLocator,
            Phase::BchChien,
            Phase::BchGlue,
        ]
        .iter()
        .map(|&p| l.phase_total(p))
        .sum();
        assert_eq!(sum, l.total(), "phases must partition the total");
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn wrong_length_rejected() {
        let code = BchCode::lac_t16();
        code.decode_variable_time(&[0u8; 399], &mut NullMeter);
    }
}
