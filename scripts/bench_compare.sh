#!/bin/sh
# Bench regression gate: re-run the table benches and compare every
# numeric field against the checked-in baselines/ JSON.
#
#   scripts/bench_compare.sh            # 2% tolerance on cycle tables
#   LAC_BENCH_TOLERANCE=5 scripts/...   # loosen for noisy environments
#
# The cycle model is deterministic, so drift only appears when code
# changes the model; the tolerance exists so that small intentional
# recalibrations do not force a baseline refresh, while real regressions
# (>N%) fail loudly. Table III is synthesis constants and must match
# exactly. Refresh baselines on purposeful changes with:
#
#   for t in table1 table2 table3; do \
#     ./target/release/$t --json > baselines/$t.json; done
#
# Requires: ./target/release/{table1,table2,table3,iss_bench}
# (cargo build --release --workspace; iss_bench feeds the MIPS-floor gate).
set -eu
cd "$(dirname "$0")/.."

TOL="${LAC_BENCH_TOLERANCE:-2}"
STATUS=0

# Flatten machine-generated JSON to "key value" lines, one per numeric
# field, in document order. Booleans and strings are skipped (they are
# compared implicitly: a changed key sequence is a structure mismatch).
# Every field whose key starts with "iss_" is volatile host-side metadata
# (wall-clock throughput, engine tags, trace-cache and JIT counters), not
# modelled cycles, so the whole prefix is stripped from BOTH the baseline
# and the current run before the key sequence is built, and gated
# separately against baselines/iss.json. Adding a new iss_*-prefixed
# field therefore never forces a baseline refresh — no per-field list to
# maintain here. The sharded front-end's I/O counters (writev_calls,
# frames_flushed, frames_per_flush, frames_per_busy_sec, shard_*) are
# wall-clock/scheduler-dependent in exactly the same way and get the
# same treatment; the reactor-scaling floor for them lives in verify.sh.
flatten() {
    tr ',{}[]' '\n' <"$1" \
        | sed '/^[[:space:]]*"iss_/d' \
        | sed '/^[[:space:]]*"shard_/d' \
        | sed '/^[[:space:]]*"\(writev_calls\|frames_flushed\|frames_per_flush\|frames_per_busy_sec\)"/d' \
        | sed -n 's/^[[:space:]]*"\([a-z_0-9]*\)": \(-\{0,1\}[0-9][0-9.]*\)$/\1 \2/p'
}

# Fail loudly on a missing, empty, or malformed JSON file instead of
# silently flattening it to zero fields (which would then report a
# confusing "field count changed" or, worse, compare nothing).
check_json() {
    file="$1"
    if [ ! -f "$file" ]; then
        echo "bench-compare: missing $file — regenerate it (see the header of this script)" >&2
        return 1
    fi
    if [ ! -s "$file" ]; then
        echo "bench-compare: $file is empty — regenerate it (see the header of this script)" >&2
        return 1
    fi
    case "$(head -c1 "$file")" in
        "{") ;;
        *)
            echo "bench-compare: $file is not a JSON object (malformed baseline?)" >&2
            return 1
            ;;
    esac
    if [ "$(flatten "$file" | wc -l)" -eq 0 ]; then
        echo "bench-compare: $file contains no numeric fields (malformed baseline?)" >&2
        return 1
    fi
    return 0
}

compare() {
    bin="$1"
    tol="$2"
    table_ok=1
    baseline="baselines/$bin.json"
    if ! check_json "$baseline"; then
        STATUS=1
        return 0
    fi
    current=$(mktemp)
    base_flat=$(mktemp)
    cur_flat=$(mktemp)
    "./target/release/$bin" --json >"$current"
    flatten "$baseline" >"$base_flat"
    flatten "$current" >"$cur_flat"
    if [ "$(wc -l <"$base_flat")" != "$(wc -l <"$cur_flat")" ]; then
        echo "bench-compare: $bin field count changed ($(wc -l <"$base_flat") -> $(wc -l <"$cur_flat")); refresh $baseline" >&2
        STATUS=1
        table_ok=0
    else
        if ! paste "$base_flat" "$cur_flat" | awk -v tol="$tol" -v bin="$bin" '
            {
                bk = $1; bv = $2; ck = $3; cv = $4
                if (bk != ck) {
                    printf "bench-compare: %s structure changed at field %d: %s -> %s\n", bin, NR, bk, ck
                    fail = 1
                    exit 1
                }
                if (bv == 0) { drift = (cv == 0) ? 0 : 100 }
                else { drift = (cv - bv) / bv * 100 }
                if (drift < 0) drift = -drift
                if (drift > tol) {
                    printf "bench-compare: %s regression in \"%s\": %s -> %s (%.2f%% > %s%%)\n", bin, bk, bv, cv, drift, tol
                    fail = 1
                }
            }
            END { exit fail }
        ' >&2; then
            STATUS=1
            table_ok=0
        fi
    fi
    rm -f "$current" "$base_flat" "$cur_flat"
    if [ "$table_ok" = 1 ]; then
        echo "bench-compare: $bin OK (tolerance ${tol}%)"
    fi
    return 0
}

compare table1 "$TOL"
compare table2 "$TOL"
compare table3 0

# ISS throughput floor: the superblock interpreter's wall-clock MIPS
# (iss_bench's "mips_fast") must stay above the recorded floor. This is a
# host-dependent figure (unlike the cycle tables), so the floor is set
# well below the reference host's steady-state and only catches gross
# regressions — e.g. the fast path silently degenerating to
# single-instruction dispatch.
if [ -f baselines/iss.json ] && [ -s baselines/iss.json ]; then
    ISS_FLOOR=$(sed -n 's/.*"mips_floor": \([0-9.]*\).*/\1/p' baselines/iss.json)
    ISS_MIPS=$(./target/release/iss_bench --json --iters 500 \
        | sed -n 's/.*"mips_fast": \([0-9.]*\).*/\1/p')
    if [ -z "$ISS_FLOOR" ]; then
        echo "bench-compare: baselines/iss.json has no \"mips_floor\" field (malformed baseline?)" >&2
        STATUS=1
    elif [ -z "$ISS_MIPS" ]; then
        echo "bench-compare: iss_bench --json printed no \"mips_fast\" field" >&2
        STATUS=1
    elif awk -v m="$ISS_MIPS" -v f="$ISS_FLOOR" 'BEGIN { exit !(m + 0 >= f + 0) }'; then
        echo "bench-compare: iss OK ($ISS_MIPS MIPS >= floor $ISS_FLOOR)"
    else
        echo "bench-compare: iss regression: $ISS_MIPS MIPS < floor $ISS_FLOOR" >&2
        STATUS=1
    fi
else
    echo "bench-compare: missing or empty baselines/iss.json — regenerate it (see the header of this script)" >&2
    STATUS=1
fi

if [ "$STATUS" != 0 ]; then
    echo "bench-compare: FAILED" >&2
    exit 1
fi
echo "bench-compare: all tables within tolerance"
