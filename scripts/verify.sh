#!/bin/sh
# Tier-1 verification — the CI entry point for this workspace.
#
# The workspace is hermetic by design (zero external dependencies; see
# DESIGN.md), so everything here runs with --offline: a clean checkout on a
# machine with no network and no crates.io cache must pass.
#
# Usage: scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo
echo "== cargo test -q --offline =="
cargo test -q --offline

echo
echo "== smoke: table1/table2/table3 (text + --json) =="
for bin in table1 table2 table3; do
    cargo run -q --release --offline -p lac-bench --bin "$bin" > /dev/null
    cargo run -q --release --offline -p lac-bench --bin "$bin" -- --json > /dev/null
    echo "  $bin OK"
done

echo
echo "verify: all checks passed"
