#!/bin/sh
# Tier-1 verification — the CI entry point for this workspace.
#
# The workspace is hermetic by design (zero external dependencies; see
# DESIGN.md), so everything here runs with --offline: a clean checkout on a
# machine with no network and no crates.io cache must pass.
#
# Usage: scripts/verify.sh [--quick]
#
# --quick runs the CI-iteration subset — fmt, build, unit tests and one
# table smoke — and skips the sweeps, bench-regression and serving gates.
# Full mode (no flags) remains the tier-1 gate.
set -eu

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *)
            echo "usage: scripts/verify.sh [--quick]" >&2
            exit 2
            ;;
    esac
done

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo
echo "== cargo build --release --offline --workspace =="
# --workspace: the acceptance gates below run member binaries
# (iss_bench, table*) straight from target/release.
cargo build --release --offline --workspace

echo
echo "== cargo test -q --offline --workspace =="
cargo test -q --offline --workspace

if [ "$QUICK" = 1 ]; then
    echo
    echo "== smoke: table2 (--json, quick mode) =="
    cargo run -q --release --offline -p lac-bench --bin table2 -- --json > /dev/null
    echo "  table2 OK"
    echo
    echo "== smoke: jit digest parity (quick mode) =="
    # One tiny program through the full four-way engine compare: exits
    # non-zero (and digests_match goes false) if the JIT — or its
    # superblock fallback on unsupported hosts — diverges from the
    # classic oracle. No speedup floor here; that gate lives in full mode.
    cargo run -q --release --offline -p lac-bench --bin iss_bench -- \
        --json --iters 8 | grep -q '"digests_match": true'
    echo "  jit digest parity OK (four-way compare)"
    echo
    echo "== smoke: self-modifying unlink digest parity (quick mode) =="
    # A hot loop patches an already-chained block mid-run: iss_bench exits
    # non-zero if any engine's digest diverges, or if a JIT-capable host
    # never severed a chain link (the unlink path went untested). Captured
    # (not piped to grep -q) so iss_bench's exit code is honoured.
    SMC=$(cargo run -q --release --offline -p lac-bench --bin iss_bench -- --smc --json)
    printf '%s' "$SMC" | grep -q '"digests_match": true' || {
        echo "smc smoke: digests_match missing or false" >&2
        echo "$SMC" >&2
        exit 1
    }
    echo "  self-modifying unlink parity OK"
    echo
    echo "== smoke: warm-start sweep digest parity (quick mode) =="
    # Small cold-vs-warm fleet; iss_bench exits non-zero on digest skew.
    # No speedup floor here — tiny sweeps are wall-clock noise; the 1.5x
    # gate lives in full mode.
    cargo run -q --release --offline -p lac-bench --bin iss_bench -- \
        --json --sweep --cells 4 --iters 8 --threads 2 | grep -q '"digests_match": true'
    echo "  warm sweep digests match"
    echo
    echo "== smoke: session handshake round trip (quick mode) =="
    # One session through the full lifecycle: SESSION_OPEN handshake, one
    # sealed chat, close — zero errors, all sessions reaped.
    SESS=$(./target/release/lac-suite bench-serve --sessions 1 --session-chats 1 \
        --workers 2 --seed 1 --json)
    printf '%s' "$SESS" | grep -q '"opened": 1' || {
        echo "session smoke: handshake did not complete" >&2
        echo "$SESS" >&2
        exit 1
    }
    printf '%s' "$SESS" | grep -q '"errors": 0' || {
        echo "session smoke: errors reported" >&2
        echo "$SESS" >&2
        exit 1
    }
    echo "  session handshake OK"
    echo
    echo "== smoke: 2-reactor front-end (quick mode) =="
    # The sharded front-end must serve the same session mix with zero
    # errors on 2 reactor shards. No scaling floor here — that gate (and
    # the 1-vs-4 digest compare) lives in full mode.
    SHARD=$(./target/release/lac-suite bench-serve --sessions 2 --session-chats 2 \
        --conns 2 --workers 2 --reactors 2 --seed 1 --json)
    for NEEDLE in '"reactors": 2' '"opened": 2' '"errors": 0'; do
        printf '%s' "$SHARD" | grep -q "$NEEDLE" || {
            echo "2-reactor smoke: missing $NEEDLE" >&2
            echo "$SHARD" >&2
            exit 1
        }
    done
    echo "  2-reactor session mix OK"
    echo
    echo "verify: quick checks passed (full mode remains the tier-1 gate)"
    exit 0
fi

echo
echo "== cargo clippy --offline --workspace --all-targets -- -D warnings =="
cargo clippy -q --offline --workspace --all-targets -- -D warnings
echo "  clippy clean"

echo
echo "== smoke: table1/table2/table3 (text + --json) =="
for bin in table1 table2 table3; do
    cargo run -q --release --offline -p lac-bench --bin "$bin" > /dev/null
    cargo run -q --release --offline -p lac-bench --bin "$bin" -- --json > /dev/null
    echo "  $bin OK"
done

echo
echo "== smoke: sharded table sweeps are thread-count invariant =="
# The modelled-cycle output must be byte-identical for any worker count;
# only the volatile iss_* wall-clock/counter fields may differ between
# runs. The multi-threaded run also enables the warm-start layer
# (--iss-warm), so one diff checks thread-count invariance AND
# warm-vs-cold architectural invariance at once.
for bin in table1 table2; do
    ONE=$(./target/release/"$bin" --json --threads 1 | grep -v '"iss_')
    MANY=$(./target/release/"$bin" --json --threads 4 --iss-warm | grep -v '"iss_')
    if [ "$ONE" != "$MANY" ]; then
        echo "sharding smoke: $bin --json differs between --threads 1 and 4" >&2
        exit 1
    fi
    echo "  $bin sharding deterministic (1 vs 4 threads)"
done
# The same sweeps are reachable through the umbrella CLI.
./target/release/lac-suite table1 --threads 2 > /dev/null
./target/release/lac-suite table2 --json > /dev/null
echo "  lac-suite table1/table2 OK"

echo
echo "== acceptance: ISS superblock speedup and digest parity =="
# iss_bench exits non-zero if any engine's architectural digest diverges
# from the classic oracle; the speedup floor (superblock vs classic) is
# wall-clock, so allow one retry before declaring a regression.
iss_gate() {
    ISS_JSON=$(./target/release/iss_bench --json --iters 1000) || {
        echo "iss smoke: engine digests diverged" >&2
        echo "$ISS_JSON" >&2
        return 1
    }
    echo "$ISS_JSON" | awk '
        /"speedup":/ {
            gsub(/[",]/, "")
            for (i = 1; i <= NF; i++) if ($i == "speedup:") v = $(i + 1)
        }
        END {
            if (v + 0 < 3.0) { print "iss smoke: superblock speedup " v " < 3.0x"; exit 1 }
            print "  superblock engine: " v "x over decode-every-step, digests match"
        }
    '
}
iss_gate || { echo "  (wall-clock noise suspected; retrying once)"; iss_gate; }

echo
echo "== acceptance: JIT engine digest parity, superblock and chaining speedups =="
# The four-way iss_bench compare (which includes a chaining-disabled JIT
# run) already exits non-zero on any digest divergence; on hosts with a
# JIT backend the chained code must also beat the superblock interpreter
# by >= 3x wall-clock AND beat its own unchained self by >= 1.3x — the
# block-chaining win measured in isolation. Elsewhere both floors are
# skipped explicitly — the graceful-fallback path is covered by unit
# tests (tests/riscv_jit.rs).
jit_gate() {
    JIT_JSON=$(./target/release/iss_bench --json --iters 1000) || {
        echo "jit gate: engine digests diverged" >&2
        echo "$JIT_JSON" >&2
        return 1
    }
    if printf '%s' "$JIT_JSON" | grep -q '"jit_supported": false'; then
        echo "  [skip: arch] no JIT backend on this host; fallback covered by unit tests"
        return 0
    fi
    echo "$JIT_JSON" | awk '
        /"jit_over_superblock":/ {
            gsub(/[",]/, "")
            for (i = 1; i <= NF; i++) if ($i == "jit_over_superblock:") sb = $(i + 1)
        }
        /"jit_chain_over_jit":/ {
            gsub(/[",]/, "")
            for (i = 1; i <= NF; i++) if ($i == "jit_chain_over_jit:") ch = $(i + 1)
        }
        END {
            if (sb + 0 < 3.0) { print "jit gate: jit " sb "x < 3.0x over superblock"; exit 1 }
            if (ch + 0 < 1.3) { print "jit gate: chained jit " ch "x < 1.3x over unchained"; exit 1 }
            print "  jit engine: " sb "x over superblock, chaining " ch "x over unchained, digests match"
        }
    '
}
jit_gate || { echo "  (wall-clock noise suspected; retrying once)"; jit_gate; }

echo
echo "== smoke: table1 ISS probe digest parity (jit vs classic) =="
# The table binaries' --iss-engine flag reruns only the trailing ISS
# probe; its iss_digest must be engine-independent (identical on the JIT
# and the decode-every-step oracle), on every host — where the JIT is
# unsupported, Engine::Jit silently runs the superblock interpreter.
JIT_DIG=$(./target/release/table1 --json --iss-engine jit \
    | sed -n 's/.*"iss_digest": "\([0-9a-f]*\)".*/\1/p')
CLASSIC_DIG=$(./target/release/table1 --json --iss-engine classic \
    | sed -n 's/.*"iss_digest": "\([0-9a-f]*\)".*/\1/p')
if [ -z "$JIT_DIG" ] || [ "$JIT_DIG" != "$CLASSIC_DIG" ]; then
    echo "table1 iss probe: jit digest '$JIT_DIG' != classic '$CLASSIC_DIG'" >&2
    exit 1
fi
echo "  table1 ISS digest identical: jit == classic"

echo
echo "== acceptance: ISS warm-start sweep (shared cache + snapshot/restore) =="
# The same fleet of sweep cells runs twice — per-cell cold starts vs the
# warm-start layer. iss_bench exits non-zero if the two fleets' combined
# architectural digests differ; the speedup floor is wall-clock, so allow
# one retry before declaring a regression.
warm_gate() {
    WARM_JSON=$(./target/release/iss_bench --json --sweep --cells 48 --iters 40 --threads 4) || {
        echo "warm sweep: cold and warm fleet digests diverged" >&2
        echo "$WARM_JSON" >&2
        return 1
    }
    echo "$WARM_JSON" | grep -q '"digests_match": true' || {
        echo "warm sweep: digests_match missing or false" >&2
        echo "$WARM_JSON" >&2
        return 1
    }
    echo "$WARM_JSON" | awk '
        /"warm_speedup":/ {
            gsub(/[",]/, "")
            for (i = 1; i <= NF; i++) if ($i == "warm_speedup:") v = $(i + 1)
        }
        END {
            if (v + 0 < 1.5) { print "warm sweep: warm speedup " v " < 1.5x"; exit 1 }
            print "  warm fleet: " v "x over cold starts, digests match"
        }
    '
}
warm_gate || { echo "  (wall-clock noise suspected; retrying once)"; warm_gate; }

echo
echo "== bench regression gate (baselines/) =="
scripts/bench_compare.sh

echo
echo "== smoke: serve / bench-serve / serve-ctl =="
SERVE_LOG=$(mktemp)
./target/release/lac-suite serve --addr 127.0.0.1:0 --workers 2 --reactors 2 --seed 1 > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
# The server prints "lac-serve listening on HOST:PORT (...)" before blocking.
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^lac-serve listening on \([0-9.:]*\) .*/\1/p' "$SERVE_LOG")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "serve smoke: server never reported its address" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    cat "$SERVE_LOG" >&2
    exit 1
fi
./target/release/lac-suite serve-ctl ping --addr "$ADDR" > /dev/null
CLASSIC=$(./target/release/lac-suite bench-serve --addr "$ADDR" --clients 2 --requests 8 \
    --op encaps --seed 1 --json)
# The same load over BATCH frames must produce the same response digest.
BATCHED=$(./target/release/lac-suite bench-serve --addr "$ADDR" --clients 2 --requests 8 \
    --op encaps --seed 1 --batch 4 --json)
CLASSIC_DIGEST=$(printf '%s' "$CLASSIC" | sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p')
BATCHED_DIGEST=$(printf '%s' "$BATCHED" | sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p')
if [ -z "$CLASSIC_DIGEST" ] || [ "$CLASSIC_DIGEST" != "$BATCHED_DIGEST" ]; then
    echo "serve smoke: batched digest '$BATCHED_DIGEST' != classic '$CLASSIC_DIGEST'" >&2
    exit 1
fi
# Raw snapshot via --json; aggregated text and the per-shard breakdown
# must render the 2-reactor shape.
./target/release/lac-suite serve-ctl stats --addr "$ADDR" --json | grep -q '"encaps": 16'
./target/release/lac-suite serve-ctl stats --addr "$ADDR" | grep -q '2 reactors'
./target/release/lac-suite serve-ctl stats --addr "$ADDR" --per-shard | grep -q 'shard 1:'
./target/release/lac-suite serve-ctl sessions --addr "$ADDR" --json --per-shard \
    | grep -q '"per_shard": \[{"shard": 0'
./target/release/lac-suite serve-ctl shutdown --addr "$ADDR" > /dev/null
if ! wait "$SERVE_PID"; then
    echo "serve smoke: server exited non-zero" >&2
    cat "$SERVE_LOG" >&2
    exit 1
fi
grep -q "server shut down" "$SERVE_LOG"
rm -f "$SERVE_LOG"
echo "  serve smoke OK ($ADDR)"

echo
echo "== acceptance: worker scaling and determinism (bench-serve --sweep) =="
SWEEP=$(./target/release/lac-suite bench-serve --sweep 1,4 --clients 2 --requests 16 \
    --op encaps --params lac128 --backend hw --seed 1 --json)
echo "$SWEEP" | grep -q '"deterministic": true' || {
    echo "serve acceptance: digests differ across worker counts" >&2
    echo "$SWEEP" >&2
    exit 1
}
echo "$SWEEP" | awk '
    /"scaling":/ {
        gsub(/[",]/, "")
        for (i = 1; i <= NF; i++) if ($i == "scaling:") v = $(i + 1)
    }
    END {
        if (v + 0 < 2.0) { print "serve acceptance: modelled scaling " v " < 2.0x" ; exit 1 }
        print "  scaling 1 -> 4 workers: " v "x, deterministic: yes"
    }
'

json_field() {
    # json_field JSON KEY -> first top-level integer value for "KEY": N.
    printf '%s' "$1" | grep -o "\"$2\": [0-9]*" | head -1 | awk '{print $2}'
}

echo
echo "== smoke: open-loop tail-latency bench (bench-serve --target-qps) =="
# Gentle fixed-rate run against an in-process server: the report must be
# well-formed (interpolated p50/p99/p999) with no transport errors.
OPEN=$(./target/release/lac-suite bench-serve --target-qps 300 --duration-ms 300 \
    --conns 2 --workers 2 --op encaps --params lac128 --seed 1 --json)
printf '%s' "$OPEN" | grep -q '"bench": "serve-open-loop"' || {
    echo "open-loop smoke: missing report header" >&2
    echo "$OPEN" >&2
    exit 1
}
printf '%s' "$OPEN" | grep -q '"p999_us"' || {
    echo "open-loop smoke: report lacks p999 tail quantile" >&2
    echo "$OPEN" >&2
    exit 1
}
OPEN_COMP=$(json_field "$OPEN" completions)
OPEN_ERRS=$(json_field "$OPEN" errors)
if [ "${OPEN_COMP:-0}" -eq 0 ] || [ "${OPEN_ERRS:-1}" -ne 0 ]; then
    echo "open-loop smoke: completions=$OPEN_COMP errors=$OPEN_ERRS" >&2
    echo "$OPEN" >&2
    exit 1
fi
echo "  open-loop report OK ($OPEN_COMP completions, p50/p99/p999 present)"

echo
echo "== acceptance: overload shedding at ~2x saturation =="
# A deliberately tiny server (1 worker, queue 2) is first hammered far past
# its service rate to measure its completion throughput (the saturation
# point), then driven open-loop at ~2x that rate: it must shed BUSY (not
# stall, not error) while still completing work, and drain cleanly on
# shutdown (run exits zero only after a graceful SHUTDOWN round-trip).
overload_gate() {
    CAL=$(./target/release/lac-suite bench-serve --target-qps 50000 --duration-ms 300 \
        --conns 4 --workers 1 --queue 2 --op keygen --params lac128 --seed 1 --json)
    CAL_COMP=$(json_field "$CAL" completions)
    CAL_WALL=$(json_field "$CAL" wall_us)
    if [ "${CAL_COMP:-0}" -eq 0 ] || [ "${CAL_WALL:-0}" -eq 0 ]; then
        echo "overload gate: calibration run produced no completions" >&2
        echo "$CAL" >&2
        return 1
    fi
    RATE=$(awk "BEGIN { r = int(2 * $CAL_COMP * 1000000 / $CAL_WALL); if (r < 200) r = 200; print r }")
    OVER=$(./target/release/lac-suite bench-serve --target-qps "$RATE" --duration-ms 400 \
        --conns 4 --workers 1 --queue 2 --op keygen --params lac128 --seed 1 --json)
    OVER_COMP=$(json_field "$OVER" completions)
    OVER_BUSY=$(json_field "$OVER" busy)
    OVER_ERRS=$(json_field "$OVER" errors)
    if [ "${OVER_BUSY:-0}" -eq 0 ] || [ "${OVER_COMP:-0}" -eq 0 ] || [ "${OVER_ERRS:-1}" -ne 0 ]; then
        echo "overload gate: at ${RATE}/s completions=$OVER_COMP busy=$OVER_BUSY errors=$OVER_ERRS" >&2
        echo "$OVER" >&2
        return 1
    fi
    echo "  at ${RATE}/s (~2x saturation): $OVER_COMP completed, $OVER_BUSY shed BUSY, 0 errors"
}
overload_gate || { echo "  (wall-clock noise suspected; retrying once)"; overload_gate; }

echo
echo "== acceptance: session soak (open/chat/rekey/close, digest parity) =="
# The full session lifecycle mix on 1 and 4 workers with the same seed:
# per-job DRBG forks must make the client-visible crypto transcript
# identical, every session must be opened, rekeyed once and reaped, and
# a clean run has zero transport errors and zero sheds.
session_mix() {
    ./target/release/lac-suite bench-serve --sessions 24 --session-chats 4 \
        --session-rekey-every 3 --conns 8 --workers "$1" --session-capacity 64 \
        --params lac128 --backend ct --seed 1 --json
}
SESS_ONE=$(session_mix 1)
SESS_FOUR=$(session_mix 4)
DIG_ONE=$(printf '%s' "$SESS_ONE" | sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p')
DIG_FOUR=$(printf '%s' "$SESS_FOUR" | sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p')
if [ -z "$DIG_ONE" ] || [ "$DIG_ONE" != "$DIG_FOUR" ]; then
    echo "session soak: digest '$DIG_FOUR' (4 workers) != '$DIG_ONE' (1 worker)" >&2
    exit 1
fi
for RUN in "$SESS_ONE" "$SESS_FOUR"; do
    S_OPENED=$(json_field "$RUN" opened)
    S_REKEYS=$(json_field "$RUN" rekeys)
    S_CLOSES=$(json_field "$RUN" closes)
    S_BUSY=$(json_field "$RUN" busy)
    S_ERRS=$(json_field "$RUN" errors)
    S_LEFT=$(json_field "$RUN" open)
    if [ "${S_OPENED:-0}" -ne 24 ] || [ "${S_REKEYS:-0}" -ne 24 ] || \
       [ "${S_CLOSES:-0}" -ne 24 ] || [ "${S_BUSY:-1}" -ne 0 ] || \
       [ "${S_ERRS:-1}" -ne 0 ] || [ "${S_LEFT:-1}" -ne 0 ]; then
        echo "session soak: opened=$S_OPENED rekeys=$S_REKEYS closes=$S_CLOSES" \
             "busy=$S_BUSY errors=$S_ERRS open_at_end=$S_LEFT" >&2
        echo "$RUN" >&2
        exit 1
    fi
done
echo "  24 sessions x (open + 4 chats + rekey + close): digests match 1 vs 4 workers, all reaped"

# The same mix paced at ~2x its unpaced completion rate: saturation shows
# up as scheduled-time latency, never as transport errors or leaked
# sessions.
SESS_RATE=$(json_field "$SESS_FOUR" achieved_qps)
SOAK_RATE=$(awk "BEGIN { r = int(2 * ${SESS_RATE:-100}); if (r < 50) r = 50; print r }")
SOAK=$(./target/release/lac-suite bench-serve --sessions 24 --session-chats 4 \
    --session-rekey-every 3 --conns 8 --workers 2 --session-capacity 64 \
    --target-qps "$SOAK_RATE" --params lac128 --backend ct --seed 1 --json)
SOAK_ERRS=$(json_field "$SOAK" errors)
SOAK_BUSY=$(json_field "$SOAK" busy)
SOAK_LEFT=$(json_field "$SOAK" open)
if [ "${SOAK_ERRS:-1}" -ne 0 ] || [ "${SOAK_BUSY:-1}" -ne 0 ] || [ "${SOAK_LEFT:-1}" -ne 0 ]; then
    echo "session soak: at ${SOAK_RATE}/s errors=$SOAK_ERRS busy=$SOAK_BUSY open_at_end=$SOAK_LEFT" >&2
    echo "$SOAK" >&2
    exit 1
fi
echo "  at ${SOAK_RATE}/s (~2x saturation): 0 errors, 0 sheds, clean drain"

echo
echo "== acceptance: bounded session table (LRU eviction under hold) =="
# 48 held-open sessions against a 32-slot table: the oldest 16 must be
# LRU-evicted, the table must sit exactly at capacity, and nothing may
# error.
HOLD=$(./target/release/lac-suite bench-serve --sessions 48 --session-chats 0 \
    --session-hold --session-capacity 32 --conns 8 --workers 2 \
    --params lac128 --backend ct --seed 1 --json)
HOLD_OPEN=$(json_field "$HOLD" open)
HOLD_EVICTED=$(json_field "$HOLD" evicted)
HOLD_ERRS=$(json_field "$HOLD" errors)
if [ "${HOLD_OPEN:-0}" -ne 32 ] || [ "${HOLD_EVICTED:-0}" -ne 16 ] || [ "${HOLD_ERRS:-1}" -ne 0 ]; then
    echo "session hold: open=$HOLD_OPEN evicted=$HOLD_EVICTED errors=$HOLD_ERRS" >&2
    echo "$HOLD" >&2
    exit 1
fi
echo "  48 sessions into 32 slots: 32 open, 16 evicted, 0 errors"

echo
echo "== acceptance: reactor scaling (sharded front-end, 1 vs 4 shards) =="
# A front-end-bound session-chat mix (session crypto runs inline on the
# reactor threads; 16 closed-loop lanes keep every shard fed) on 1 and 4
# reactors. The client-visible transcript must be byte-identical with
# zero errors and zero sheds, and front-end completions/s — flushed
# reply frames per busiest-shard CPU-second, the I/O-plane analogue of
# the modelled worker makespan — must scale >= 1.8x. Per-thread CPU time
# is scheduler-independent, so the floor holds on single-core CI hosts.
reactor_mix() {
    ./target/release/lac-suite bench-serve --sessions 16 --session-chats 48 \
        --conns 16 --workers 2 --reactors "$1" --session-capacity 64 \
        --params lac128 --backend ct --seed 5 --json
}
json_float() {
    printf '%s' "$1" | grep -o "\"$2\": [0-9.]*" | head -1 | awk '{print $2}'
}
reactor_gate() {
    R_ONE=$(reactor_mix 1)
    R_FOUR=$(reactor_mix 4)
    for RUN in "$R_ONE" "$R_FOUR"; do
        R_ERRS=$(json_field "$RUN" errors)
        R_BUSY=$(json_field "$RUN" busy)
        if [ "${R_ERRS:-1}" -ne 0 ] || [ "${R_BUSY:-1}" -ne 0 ]; then
            echo "reactor gate: errors=$R_ERRS busy=$R_BUSY" >&2
            echo "$RUN" >&2
            return 1
        fi
    done
    RDIG_ONE=$(printf '%s' "$R_ONE" | sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p')
    RDIG_FOUR=$(printf '%s' "$R_FOUR" | sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p')
    if [ -z "$RDIG_ONE" ] || [ "$RDIG_ONE" != "$RDIG_FOUR" ]; then
        echo "reactor gate: digest '$RDIG_FOUR' (4 reactors) != '$RDIG_ONE' (1 reactor)" >&2
        return 1
    fi
    FPBS_ONE=$(json_float "$R_ONE" frames_per_busy_sec)
    FPBS_FOUR=$(json_float "$R_FOUR" frames_per_busy_sec)
    if [ -z "$FPBS_ONE" ] || [ "$(awk "BEGIN { print ($FPBS_ONE == 0) }")" = "1" ]; then
        echo "  reactor scaling [skip: arch] (no per-thread CPU clock; digests still match)"
        return 0
    fi
    awk "BEGIN {
        r = $FPBS_FOUR / $FPBS_ONE
        if (r < 1.8) { printf \"reactor gate: frames/busy-s scaling %.2fx < 1.8x\n\", r; exit 1 }
        printf \"  frames/busy-s 1 -> 4 reactors: %.2fx, digests match, 0 errors\n\", r
    }"
}
reactor_gate || { echo "  (scheduler noise suspected; retrying once)"; reactor_gate; }

# Overload semantics must hold per shard: the tiny-queue server from the
# overload gate, now sharded 4 ways, still sheds BUSY instead of
# stalling and still drains cleanly on SHUTDOWN (the run exits zero only
# after every shard empties).
shard_overload_gate() {
    SOVER=$(./target/release/lac-suite bench-serve --target-qps 50000 --duration-ms 400 \
        --conns 8 --workers 1 --reactors 4 --queue 2 --op keygen --params lac128 \
        --seed 1 --json)
    SOVER_COMP=$(json_field "$SOVER" completions)
    SOVER_BUSY=$(json_field "$SOVER" busy)
    SOVER_ERRS=$(json_field "$SOVER" errors)
    if [ "${SOVER_BUSY:-0}" -eq 0 ] || [ "${SOVER_COMP:-0}" -eq 0 ] || [ "${SOVER_ERRS:-1}" -ne 0 ]; then
        echo "shard overload gate: completions=$SOVER_COMP busy=$SOVER_BUSY errors=$SOVER_ERRS" >&2
        echo "$SOVER" >&2
        return 1
    fi
    echo "  4-shard overload: $SOVER_COMP completed, $SOVER_BUSY shed BUSY, 0 errors, clean drain"
}
shard_overload_gate || { echo "  (wall-clock noise suspected; retrying once)"; shard_overload_gate; }

echo
echo "verify: all checks passed"
